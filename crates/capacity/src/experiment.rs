//! One empirical run: configuration → world → results.
//!
//! This is the paper's Fig. 5 loop, made executable: the SIP client
//! generates calls at arrival rate λ = A/h, the SIP server answers them,
//! both exchange RTP for `h` seconds through the PBX, and blocking rate +
//! voice quality are evaluated and registered.

use crate::world::{Ev, MediaKernel, MediaPath, SignallingPath, World};
use des::{Scheduler, SchedulerKind, SimDuration, SimTime, Simulation};
use faults::{FaultKind, FaultSchedule};
use loadgen::{CallOutcome, HoldingDist, RetryPolicy};
use overload::ControlLaw;
use pbx_sim::OverloadControl;
use serde::{Deserialize, Serialize};
use teletraffic::Erlangs;
use vmon::MonitorReport;

/// How the media plane is simulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MediaMode {
    /// No RTP at all — signalling-only runs for blocking-probability
    /// sweeps (Fig. 6), where media adds nothing but wall-clock time.
    Off,
    /// Every RTP packet is generated, relayed and scored. `encode_every`
    /// controls how often real G.711 encoding runs (1 = every frame;
    /// 50 = once a second per stream, headers/counts still exact).
    PerPacket {
        /// Encode real audio every Nth frame; intervening frames reuse
        /// the cached companded payload.
        encode_every: u32,
    },
}

/// Engine options orthogonal to the experiment physics: which
/// future-event-list backend, media-path implementation and media compute
/// kernel drive the run. Every combination produces identical simulation
/// outputs for its media path (enforced by `tests/determinism.rs`; the
/// kernel is digest-invisible because payload bytes never reach the
/// scored physics); the default is the fast triple, the alternatives are
/// the reference implementations kept for A/B validation and
/// benchmarking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimOptions {
    /// Future-event-list backend.
    pub scheduler: SchedulerKind,
    /// Media cadence implementation.
    pub media_path: MediaPath,
    /// Media synthesis/companding kernel.
    pub media_kernel: MediaKernel,
    /// Signalling transport representation (structured vs wire bytes).
    pub signalling: SignallingPath,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            scheduler: SchedulerKind::Wheel,
            media_path: MediaPath::Coalesced,
            media_kernel: MediaKernel::Batched,
            signalling: SignallingPath::Interned,
        }
    }
}

impl SimOptions {
    /// The original implementation quadruple: global binary heap, one
    /// event per media frame per session, scalar per-sample media kernel,
    /// serialize-and-reparse signalling.
    #[must_use]
    pub fn reference() -> Self {
        SimOptions {
            scheduler: SchedulerKind::Heap,
            media_path: MediaPath::PerTick,
            media_kernel: MediaKernel::Reference,
            signalling: SignallingPath::Reference,
        }
    }
}

/// Configuration for one empirical run.
#[derive(Debug, Clone)]
pub struct EmpiricalConfig {
    /// Offered workload in Erlangs (`A`).
    pub erlangs: f64,
    /// Number of PBX servers, calls split round-robin (1 = the paper's
    /// testbed; >1 = the §IV server-farm alternative). Each server gets
    /// the full `channels` pool.
    pub servers: u32,
    /// Holding-time law (`h`; the paper fixes 120 s).
    pub holding: HoldingDist,
    /// Call placement window in seconds (the paper uses 180 s).
    pub placement_window_s: f64,
    /// PBX channel-pool size (`N`).
    pub channels: u32,
    /// Media simulation mode.
    pub media: MediaMode,
    /// UAS pickup delay (0 = answer immediately, SIPp default).
    pub pickup_delay: SimDuration,
    /// Random per-link loss probability (models the wire-level "packet
    /// errors" the paper reports at extreme load; 0 = clean).
    pub link_loss_probability: f64,
    /// Silence suppression (VAD): when true, endpoints model talkspurts
    /// (≈42% activity) and suppress RTP during silence. The paper's
    /// testbed keeps this **off** ("a dialogue without moments of
    /// idleness"); the ablation bench measures what it would have saved.
    pub silence_suppression: bool,
    /// Capture all delivered traffic into an in-memory pcap (the
    /// Wireshark substitution made literal). Costs memory proportional to
    /// traffic; intended for small demonstration runs. Retrieve via
    /// [`crate::world::World::capture`] on a [`run_world`] simulation.
    pub capture_traffic: bool,
    /// Number of distinct caller (and callee) identities registered.
    pub user_pool: u32,
    /// Per-user concurrent-call ceiling (`None` = unlimited, the paper's
    /// testbed; `Some(k)` = the §IV call-policy experiment).
    pub max_calls_per_user: Option<u32>,
    /// Scheduled faults injected during the run (empty = the paper's
    /// healthy testbed).
    pub faults: FaultSchedule,
    /// PBX overload control (`None` = saturate like the paper's server;
    /// `Some` = shed with 503 + Retry-After between the watermarks).
    pub overload: Option<OverloadControl>,
    /// Pluggable overload-control law (the [`overload`] crate's suite).
    /// When both this and `overload` are set, the legacy `overload`
    /// hysteresis wins — it is the digest-pinned reference path.
    /// Rate/window laws additionally arm a caller-side [`loadgen::Pacer`]
    /// that obeys the PBX's `X-Overload-Control` feedback.
    pub overload_law: Option<ControlLaw>,
    /// UAC 503-retry behaviour (`None` = a shed call counts as blocked).
    pub retry: Option<RetryPolicy>,
    /// Worker threads for sharded execution (`None` = the process-wide
    /// [`des::pool`] default, available parallelism). Only consulted by
    /// the partitioned runner ([`crate::shard::run_partitioned`]); the
    /// classic single-wheel path ignores it.
    pub threads: Option<u32>,
    /// Finite-source population workload (`None` = the classic fixed
    /// `user_pool` open-loop arrivals). When set, call arrivals come from
    /// the aggregated Engset engine over `subscribers` users (callers
    /// `1_000_000 + u`), registration churn runs as a steady state on the
    /// expiry wheel, and per-call monitor state is retired after hangup —
    /// the million-subscriber mode. The classic pool still primes (it
    /// provides the callee extensions), and flash-crowd faults plus
    /// pacer-arming overload laws are unsupported in this mode.
    pub population: Option<loadgen::PopulationConfig>,
    /// Master RNG seed: a run is a pure function of this value.
    pub seed: u64,
}

impl EmpiricalConfig {
    /// The paper's Table I cell for workload `erlangs`: h = 120 s fixed,
    /// 180 s placement, 165 channels, full per-packet media.
    #[must_use]
    pub fn table1(erlangs: f64, seed: u64) -> Self {
        EmpiricalConfig {
            erlangs,
            servers: 1,
            holding: HoldingDist::Fixed(120.0),
            placement_window_s: 180.0,
            channels: 165,
            media: MediaMode::PerPacket { encode_every: 50 },
            pickup_delay: SimDuration::ZERO,
            // The paper observes wire-level packet errors only at its
            // highest workloads; a small loss ramp above 160 E reproduces
            // the reported MOS dip and error counts.
            link_loss_probability: ((erlangs - 160.0).max(0.0) / 80.0) * 2e-3,
            silence_suppression: false,
            capture_traffic: false,
            user_pool: 100,
            max_calls_per_user: None,
            faults: FaultSchedule::new(),
            overload: None,
            overload_law: None,
            retry: None,
            threads: None,
            population: None,
            seed,
        }
    }

    /// Signalling-only variant for blocking-probability sweeps (Fig. 6).
    #[must_use]
    pub fn signalling_only(erlangs: f64, seed: u64) -> Self {
        EmpiricalConfig {
            media: MediaMode::Off,
            link_loss_probability: 0.0,
            ..EmpiricalConfig::table1(erlangs, seed)
        }
    }

    /// Rough estimate of concurrently pending scheduler events, used to
    /// pre-size the future-event list. Each concurrent call keeps a
    /// handful of events in flight (its media cadence, packets crossing
    /// the star, its hangup timer); concurrency is bounded by offered
    /// load and the channel pool.
    #[must_use]
    pub fn expected_pending_events(&self) -> usize {
        let concurrent = (self.erlangs.ceil() as usize)
            .min(self.channels as usize)
            .max(1)
            * self.servers.max(1) as usize;
        let per_call = match self.media {
            MediaMode::Off => 4,
            MediaMode::PerPacket { .. } => 8,
        };
        concurrent * per_call + 1024
    }

    /// A small smoke-test configuration that runs in milliseconds even in
    /// debug builds (short window, light load, sparse encoding).
    #[must_use]
    pub fn smoke(seed: u64) -> Self {
        EmpiricalConfig {
            erlangs: 4.0,
            servers: 1,
            holding: HoldingDist::Fixed(10.0),
            placement_window_s: 20.0,
            channels: 5,
            media: MediaMode::PerPacket { encode_every: 25 },
            pickup_delay: SimDuration::ZERO,
            link_loss_probability: 0.0,
            silence_suppression: false,
            capture_traffic: false,
            user_pool: 20,
            max_calls_per_user: None,
            faults: FaultSchedule::new(),
            overload: None,
            overload_law: None,
            retry: None,
            threads: None,
            population: None,
            seed,
        }
    }

    /// A population-scale cell: `subscribers` finite sources offering
    /// `erlangs` at the diurnal peak, signalling-only, with registration
    /// churn on. `per_user_rate` is sized so the *busy hour* offers
    /// `erlangs`; a compressed campus day sweeps the whole profile inside
    /// the placement window so the run crosses the peak.
    #[must_use]
    pub fn population_scale(subscribers: u64, erlangs: f64, seed: u64) -> Self {
        let mut cfg = EmpiricalConfig::signalling_only(erlangs, seed);
        let mut pop =
            loadgen::PopulationConfig::for_offered_load(subscribers, erlangs, cfg.holding.mean());
        pop.profile = loadgen::DiurnalProfile::campus_day_compressed(cfg.placement_window_s);
        cfg.population = Some(pop);
        cfg
    }
}

/// Recovery accounting for one injected disruption.
///
/// The baseline is the mean answers/second over the ten seconds before
/// the fault; recovery is the first post-fault second whose trailing
/// 5-second mean answer rate is back within 5% of that baseline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultRecovery {
    /// When the fault fired, in seconds.
    pub fault_at_s: f64,
    /// Human-readable fault description (the `FaultKind` debug form).
    pub fault: String,
    /// Pre-fault answer rate (answers/second).
    pub baseline_rate: f64,
    /// Seconds from the fault until the answer rate returned to within
    /// 5% of baseline; `None` if it never did inside the horizon (or if
    /// there was no pre-fault traffic to recover to).
    pub time_to_recover_s: Option<f64>,
    /// Observation horizon in seconds after the fault: how long the run
    /// could have watched for a recovery. A `None` above is a *censored*
    /// observation — "no recovery within `censor_horizon_s` seconds" —
    /// not "never recovers"; reports render it `>Ns` accordingly.
    pub censor_horizon_s: f64,
}

/// Results of one empirical run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// Offered workload in Erlangs.
    pub erlangs: f64,
    /// Calls attempted (INVITEs placed).
    pub attempted: u64,
    /// Calls answered and completed.
    pub completed: u64,
    /// Calls blocked at admission.
    pub blocked: u64,
    /// Calls failed for other reasons.
    pub failed: u64,
    /// Calls still open at the end of the run.
    pub abandoned: u64,
    /// Observed blocking probability (blocked / attempted) over the whole
    /// placement window — the paper's raw empirical measure, which carries
    /// the fill-up transient of the first holding time.
    pub observed_pb: f64,
    /// Steady-state blocking: attempts arriving after one holding time of
    /// warmup (standard transient truncation). This is the estimator the
    /// Erlang-B comparison of Fig. 6 uses.
    pub steady_pb: f64,
    /// Attempts counted in the steady-state window.
    pub steady_attempts: u64,
    /// Erlang-B prediction at this load and channel count.
    pub analytic_pb: f64,
    /// Peak concurrent channels used — Table I's "Number of Channels".
    /// (With a farm: the busiest server's peak.)
    pub peak_channels: u32,
    /// Peak concurrent channels per server (length = `servers`).
    pub per_server_peaks: Vec<u32>,
    /// Time-weighted mean channel occupancy (carried Erlangs).
    pub carried_erlangs: f64,
    /// Mean CPU utilisation over the run.
    pub cpu_mean: f64,
    /// (min, max) CPU utilisation over 5 s windows.
    pub cpu_band: (f64, f64),
    /// Monitor report (RTP counts, SIP counts, MOS).
    pub monitor: MonitorReport,
    /// Total simulated duration in seconds.
    pub sim_seconds: f64,
    /// DES events processed (throughput accounting).
    pub events_processed: u64,
    /// Wall-clock seconds the event loop took. Host-dependent, not part
    /// of the physics — excluded from [`RunResult::digest`].
    pub wall_clock_s: f64,
    /// Events processed per wall-clock second (excluded from the digest).
    pub events_per_sec: f64,
    /// Wall-clock attribution per subsystem phase (all-zero with
    /// `enabled: false` unless the binary was built with the
    /// `phase-timing` feature). Host-dependent — excluded from the
    /// digest like the other wall-clock fields.
    pub phases: des::PhaseBreakdown,
    /// Calls shed by PBX overload control (503 + Retry-After).
    pub shed: u64,
    /// UAC re-INVITEs sent after a shed (backoff retries).
    pub retries: u64,
    /// Calls that were shed at least once but completed after retrying.
    pub shed_then_ok: u64,
    /// Goodput: calls that carried a full conversation, whether admitted
    /// first try (`completed`) or after backoff (`shed_then_ok`).
    pub goodput: u64,
    /// Per-server resettable channel high-water gauge at run end (the
    /// crash-recovery refill level when the gauge was re-armed by a
    /// restart; equals the all-time peak otherwise).
    pub per_server_peak_in_use: Vec<u32>,
    /// Recovery accounting for each injected disruption (heal events and
    /// flash crowds are consequences, not disruptions, and are skipped).
    pub recoveries: Vec<FaultRecovery>,
}

impl RunResult {
    /// Order-sensitive FNV-1a digest over the physics outputs: call
    /// counts, blocking, occupancy, CPU and voice-quality figures (float
    /// bit patterns, so "close" is not "equal"). Wall-clock fields are
    /// excluded — two runs agree on `digest()` exactly when the
    /// simulation produced the same results, regardless of how fast the
    /// host executed them.
    #[must_use]
    pub fn digest(&self) -> u64 {
        fn mix(h: u64, v: u64) -> u64 {
            v.to_le_bytes()
                .iter()
                .fold(h, |h, &b| (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3))
        }
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for v in [
            self.attempted,
            self.completed,
            self.blocked,
            self.failed,
            self.abandoned,
            self.steady_attempts,
            u64::from(self.peak_channels),
            self.events_processed,
            self.shed,
            self.retries,
            self.shed_then_ok,
            self.goodput,
            self.monitor.rtp_packets,
            self.monitor.sip_total,
            self.monitor.calls_scored,
        ] {
            h = mix(h, v);
        }
        for p in &self.per_server_peaks {
            h = mix(h, u64::from(*p));
        }
        for f in [
            self.observed_pb,
            self.steady_pb,
            self.carried_erlangs,
            self.cpu_mean,
            self.sim_seconds,
            self.monitor.mos_mean,
            self.monitor.mos_min,
            self.monitor.mean_jitter_ms,
            self.monitor.mean_loss,
        ] {
            h = mix(h, f.to_bits());
        }
        h
    }
}

/// Trailing mean of the `window` seconds of `series` ending at `end_idx`
/// (inclusive), clamped at the start of the series. The series only
/// extends to the last recorded answer; seconds past its end are real
/// silence and count as zero.
fn trailing_mean(series: &[u64], end_idx: usize, window: usize) -> f64 {
    let lo = (end_idx + 1).saturating_sub(window);
    let sum: u64 = (lo..=end_idx)
        .map(|i| series.get(i).copied().unwrap_or(0))
        .sum();
    sum as f64 / (end_idx + 1 - lo) as f64
}

/// Compute [`FaultRecovery`] entries from a per-second answer series.
///
/// Disruptions are partitions, degrades, crashes and throttles with
/// factor > 1; heals, throttle restores and flash crowds are skipped
/// (a flash crowd *raises* the answer rate, so "recovery to baseline"
/// is not the interesting question there).
///
/// `horizon_s` is the end of the observed window (the run's simulated
/// end): a fault that never recovers is censored at
/// `horizon_s - fault_at_s`, and the entry records that horizon so the
/// report can say `>Ns` rather than implying the system was down forever.
#[must_use]
pub fn compute_recoveries(
    faults: &FaultSchedule,
    answers_per_sec: &[u64],
    horizon_s: f64,
) -> Vec<FaultRecovery> {
    let mut out = Vec::new();
    for event in faults.events() {
        let disruptive = match &event.kind {
            FaultKind::LinkPartition { .. }
            | FaultKind::LinkDegrade { .. }
            | FaultKind::PbxCrash { .. } => true,
            FaultKind::CpuThrottle { factor, .. } => *factor > 1.0,
            FaultKind::LinkHeal { .. } | FaultKind::FlashCrowd { .. } => false,
        };
        if !disruptive {
            continue;
        }
        let fault_at_s = event.at.as_secs_f64();
        let fault_sec = fault_at_s as usize;
        let fault = format!("{:?}", event.kind);
        let censor_horizon_s = (horizon_s - fault_at_s).max(0.0);
        if fault_sec == 0 {
            out.push(FaultRecovery {
                fault_at_s,
                fault,
                baseline_rate: 0.0,
                time_to_recover_s: None,
                censor_horizon_s,
            });
            continue;
        }
        // Baseline: mean over the 10 seconds before the fault.
        let baseline_rate = trailing_mean(answers_per_sec, fault_sec - 1, 10);
        let time_to_recover_s = if baseline_rate <= 0.0 {
            None
        } else {
            (fault_sec + 1..answers_per_sec.len())
                .find(|&s| trailing_mean(answers_per_sec, s, 5) >= 0.95 * baseline_rate)
                .map(|s| s as f64 - fault_at_s)
        };
        out.push(FaultRecovery {
            fault_at_s,
            fault,
            baseline_rate,
            time_to_recover_s,
            censor_horizon_s,
        });
    }
    out
}

/// Runs empirical experiments.
pub struct EmpiricalRunner;

impl EmpiricalRunner {
    /// Execute one run to completion and collect the results (default
    /// engine options: timing-wheel scheduler, coalesced media path).
    #[must_use]
    pub fn run(config: EmpiricalConfig) -> RunResult {
        Self::run_with(config, SimOptions::default())
    }

    /// Execute one run with explicit engine options. Physics outputs are
    /// independent of `opts.scheduler`; `opts.media_path` selects between
    /// the coalesced and per-tick media implementations.
    #[must_use]
    pub fn run_with(config: EmpiricalConfig, opts: SimOptions) -> RunResult {
        let erlangs = config.erlangs;
        let channels = config.channels;
        // Horizon: placement + longest plausible holding + teardown slack.
        let hold_slack = match config.holding {
            HoldingDist::Fixed(h) => h + 10.0,
            _ => config.holding.mean() * 8.0 + 30.0,
        };
        let mut horizon_s = 1.0 + config.placement_window_s + hold_slack + 5.0;
        if let Some(last) = config.faults.last_effect_time() {
            // Leave room after the last fault effect for re-registration,
            // retried calls and the recovery window to be observable.
            horizon_s = horizon_s.max(last.as_secs_f64() + hold_slack + 15.0);
        }
        let horizon = SimTime::from_secs_f64(horizon_s);

        let started = std::time::Instant::now();
        let mut sim = run_world_with(config, horizon, opts);
        let wall_clock_s = started.elapsed().as_secs_f64();
        let end = sim.now();
        let events_processed = sim.events_processed();

        let world = &mut sim.world;
        for pbx in &mut world.pbxes {
            pbx.finish(end);
        }
        let mut journal = loadgen::Journal::new();
        for uac in &mut world.uacs {
            let _ = uac.finish();
            journal.merge(&uac.journal);
        }

        let attempted = journal.attempted;
        let blocked = journal.outcome_count(CallOutcome::Blocked);
        let completed = journal.outcome_count(CallOutcome::Completed);
        let failed = journal.outcome_count(CallOutcome::Failed);
        let abandoned = journal.outcome_count(CallOutcome::Abandoned);
        let shed_then_ok = journal.outcome_count(CallOutcome::ShedThenOk);
        let retries = journal.retries;
        let observed_pb = journal.blocking_probability();
        let shed = world.pbxes.iter().map(|p| p.stats().calls_shed).sum();
        let recoveries = compute_recoveries(
            &world.config.faults,
            world.answers_per_second(),
            end.as_secs_f64(),
        );

        // Steady-state estimate from the CDRs: discard attempts placed
        // before the pools could have filled (placement start + one mean
        // holding time).
        let warmup = SimTime::from_secs_f64(1.0 + world.config.holding.mean());
        let mut steady_attempts = 0u64;
        let mut steady_blocked = 0u64;
        for pbx in &world.pbxes {
            for rec in pbx.cdr.records() {
                if rec.start >= warmup {
                    steady_attempts += 1;
                    if rec.disposition == pbx_sim::Disposition::Blocked {
                        steady_blocked += 1;
                    }
                }
            }
        }
        let steady_pb = if steady_attempts == 0 {
            0.0
        } else {
            steady_blocked as f64 / steady_attempts as f64
        };

        RunResult {
            erlangs,
            attempted,
            completed,
            blocked,
            failed,
            abandoned,
            observed_pb,
            steady_pb,
            steady_attempts,
            // Shared-curve lookup, bit-identical to the direct recurrence
            // (the curve memoizes the same pass), so sweeps stop paying
            // an O(channels) solve per replication.
            analytic_pb: teletraffic::erlang_b::shared_curve(Erlangs(erlangs), channels)
                .at(channels),
            peak_channels: world.pbxes.iter().map(|p| p.pool.peak()).max().unwrap_or(0),
            per_server_peaks: world.pbxes.iter().map(|p| p.pool.peak()).collect(),
            carried_erlangs: world
                .pbxes
                .iter()
                .map(|p| p.pool.mean_occupancy(world.placement_end()))
                .sum(),
            cpu_mean: world
                .pbxes
                .iter()
                .map(|p| p.cpu.mean_utilisation(end))
                .sum::<f64>()
                / world.pbxes.len() as f64,
            cpu_band: world
                .pbxes
                .iter()
                .map(|p| p.cpu.utilisation_band())
                .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), (l, h)| {
                    (lo.min(l), hi.max(h))
                }),
            monitor: world.monitor.report(),
            sim_seconds: end.as_secs_f64(),
            events_processed,
            wall_clock_s,
            events_per_sec: if wall_clock_s > 0.0 {
                events_processed as f64 / wall_clock_s
            } else {
                0.0
            },
            phases: world.phase_breakdown(wall_clock_s),
            shed,
            retries,
            shed_then_ok,
            goodput: completed + shed_then_ok,
            per_server_peak_in_use: world.pbxes.iter().map(|p| p.pool.peak_in_use()).collect(),
            recoveries,
        }
    }
}

/// Convenience: run a scaled Table-I-shaped experiment and return both the
/// simulation and its result (used by integration tests needing interior
/// access).
#[must_use]
pub fn run_world(config: EmpiricalConfig, horizon: SimTime) -> Simulation<World, Ev> {
    run_world_with(config, horizon, SimOptions::default())
}

/// [`run_world`] with explicit engine options: the scheduler is pre-sized
/// from [`EmpiricalConfig::expected_pending_events`], primed and driven to
/// `horizon`.
#[must_use]
pub fn run_world_with(
    config: EmpiricalConfig,
    horizon: SimTime,
    opts: SimOptions,
) -> Simulation<World, Ev> {
    let sched = Scheduler::with_kind_and_capacity(opts.scheduler, config.expected_pending_events());
    let world = World::with_engine(config, opts.media_path, opts.media_kernel)
        .with_signalling(opts.signalling);
    let mut sim = Simulation::with_scheduler(world, sched);
    sim.world.prime(&mut sim.sched);
    sim.run_until(horizon);
    sim
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_completes_calls() {
        let r = EmpiricalRunner::run(EmpiricalConfig::smoke(42));
        assert!(r.attempted > 0, "calls were placed");
        assert!(r.completed > 0, "calls completed");
        assert_eq!(
            r.attempted,
            r.completed + r.blocked + r.failed + r.abandoned,
            "outcome conservation"
        );
        assert!(r.failed == 0, "no failures expected: {r:?}");
        assert!(r.peak_channels > 0);
        assert!(r.monitor.rtp_packets > 0, "media flowed");
        assert!(r.monitor.mos_mean > 4.0, "clean LAN scores high MOS");
        assert!(r.cpu_mean > 0.0 && r.cpu_mean < 1.0);
    }

    /// A small finite-source population cell: 200 subscribers offering
    /// the smoke load, signalling-only, with the expiry wheel turning
    /// fast enough to churn inside the 20 s window.
    fn pop_smoke(seed: u64) -> EmpiricalConfig {
        let mut cfg = EmpiricalConfig::smoke(seed);
        cfg.media = MediaMode::Off;
        let mut pop =
            loadgen::PopulationConfig::for_offered_load(200, cfg.erlangs, cfg.holding.mean());
        pop.reg_expiry_s = 30.0;
        pop.churn_buckets = 8;
        cfg.population = Some(pop);
        cfg
    }

    #[test]
    fn population_smoke_places_and_completes_calls() {
        let r = EmpiricalRunner::run(pop_smoke(42));
        assert!(r.attempted > 0, "population arrivals placed calls");
        assert!(r.completed > 0, "population calls completed: {r:?}");
        assert_eq!(
            r.attempted,
            r.completed + r.blocked + r.failed + r.abandoned,
            "outcome conservation"
        );
        assert!(r.failed == 0, "no failures expected: {r:?}");
    }

    #[test]
    fn population_reference_engine_is_digest_identical() {
        // The per-user-timer reference consumes the same shared draws as
        // the aggregated sampler (and asserts the superposition argument
        // internally on every arrival), so flipping it on cannot move the
        // physics digest — on either scheduler backend.
        let agg = EmpiricalRunner::run(pop_smoke(7));
        let mut ref_cfg = pop_smoke(7);
        ref_cfg.population.as_mut().unwrap().reference = true;
        let refe = EmpiricalRunner::run(ref_cfg.clone());
        assert!(agg.attempted > 0);
        assert_eq!(agg.digest(), refe.digest(), "reference vs aggregated");
        let heap = EmpiricalRunner::run_with(
            ref_cfg,
            SimOptions {
                scheduler: SchedulerKind::Heap,
                ..SimOptions::default()
            },
        );
        assert_eq!(agg.digest(), heap.digest(), "backend-independent");
    }

    #[test]
    fn population_churn_registers_through_the_wheel() {
        // Same cell, one with a wheel that turns during the run, one with
        // an expiry far past the horizon: the churn must show up as extra
        // SIP traffic (REGISTER → 401 challenge → REGISTER+digest → 200),
        // and must not change how many calls the cell carries.
        let churning = EmpiricalRunner::run(pop_smoke(9));
        let mut quiet_cfg = pop_smoke(9);
        quiet_cfg.population.as_mut().unwrap().reg_expiry_s = 1.0e6;
        let quiet = EmpiricalRunner::run(quiet_cfg);
        assert!(
            churning.monitor.sip_total > quiet.monitor.sip_total,
            "churn traffic visible: {} vs {}",
            churning.monitor.sip_total,
            quiet.monitor.sip_total
        );
        assert_eq!(
            churning.completed, quiet.completed,
            "churn is load, not physics"
        );
    }

    #[test]
    fn healthy_run_has_no_robustness_activity() {
        let r = EmpiricalRunner::run(EmpiricalConfig::smoke(42));
        assert_eq!(r.shed, 0);
        assert_eq!(r.retries, 0);
        assert_eq!(r.shed_then_ok, 0);
        assert_eq!(r.goodput, r.completed);
        assert!(r.recoveries.is_empty());
        assert_eq!(r.per_server_peak_in_use.len(), 1);
        assert!(r.per_server_peak_in_use[0] > 0);
    }

    #[test]
    fn compute_recoveries_finds_dip_and_heal() {
        // Synthetic series: steady 10 answers/s, a partition zeroes
        // seconds 40..50, then the rate returns.
        let mut answers = vec![10u64; 80];
        for slot in answers.iter_mut().take(50).skip(40) {
            *slot = 0;
        }
        let faults = FaultSchedule::new()
            .at(
                40.0,
                FaultKind::LinkPartition {
                    a: netsim::NodeId(3),
                    b: netsim::NodeId(0),
                },
            )
            .at(
                50.0,
                FaultKind::LinkHeal {
                    a: netsim::NodeId(3),
                    b: netsim::NodeId(0),
                },
            );
        let recs = compute_recoveries(&faults, &answers, 80.0);
        assert_eq!(recs.len(), 1, "heal is not a disruption: {recs:?}");
        assert!((recs[0].baseline_rate - 10.0).abs() < 1e-9);
        let ttr = recs[0].time_to_recover_s.expect("recovers");
        // Outage lasts 10 s; the 5 s trailing mean needs a few more
        // healthy seconds before it clears 95% of baseline.
        assert!((10.0..20.0).contains(&ttr), "ttr = {ttr}");
    }

    #[test]
    fn compute_recoveries_handles_no_recovery_and_no_baseline() {
        // Permanent outage: never recovers.
        let mut answers = vec![8u64; 60];
        for slot in answers.iter_mut().skip(30) {
            *slot = 0;
        }
        let partition = FaultSchedule::new().at(
            30.0,
            FaultKind::LinkPartition {
                a: netsim::NodeId(3),
                b: netsim::NodeId(0),
            },
        );
        let recs = compute_recoveries(&partition, &answers, 60.0);
        assert_eq!(recs[0].time_to_recover_s, None);
        // The censored observation records how long the run watched: a
        // report renders ">30s", not a blank cell.
        assert!((recs[0].censor_horizon_s - 30.0).abs() < 1e-9, "{recs:?}");
        // Fault before any traffic: no baseline to recover to.
        let early = FaultSchedule::new().at(
            0.5,
            FaultKind::PbxCrash {
                pbx: 0,
                restart_after: SimDuration::from_secs(1),
            },
        );
        let recs = compute_recoveries(&early, &answers, 60.0);
        assert_eq!(recs[0].time_to_recover_s, None);
        assert!(recs[0].censor_horizon_s > 59.0, "{recs:?}");
    }

    #[test]
    fn smoke_run_is_deterministic() {
        let a = EmpiricalRunner::run(EmpiricalConfig::smoke(7));
        let b = EmpiricalRunner::run(EmpiricalConfig::smoke(7));
        assert_eq!(a.attempted, b.attempted);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.blocked, b.blocked);
        assert_eq!(a.monitor.rtp_packets, b.monitor.rtp_packets);
        assert_eq!(a.events_processed, b.events_processed);
        assert_eq!(a.monitor.sip_total, b.monitor.sip_total);
        assert_eq!(a.digest(), b.digest(), "physics digest is reproducible");
    }

    #[test]
    fn digest_ignores_wall_clock_but_not_physics() {
        let a = EmpiricalRunner::run(EmpiricalConfig::smoke(7));
        let mut b = a.clone();
        b.wall_clock_s *= 10.0;
        b.events_per_sec /= 10.0;
        assert_eq!(a.digest(), b.digest(), "wall clock is not physics");
        b.completed += 1;
        assert_ne!(a.digest(), b.digest(), "counts are physics");
    }

    #[test]
    fn engine_options_do_not_change_the_physics() {
        // All four scheduler/media-path pairings run the same experiment;
        // scheduler choice must be invisible in the outputs, and the two
        // media paths must agree on everything except event bookkeeping.
        let cfg = || EmpiricalConfig::smoke(21);
        let fast = EmpiricalRunner::run_with(cfg(), SimOptions::default());
        let reference = EmpiricalRunner::run_with(cfg(), SimOptions::reference());
        for (a, b) in [
            (
                &fast,
                &EmpiricalRunner::run_with(
                    cfg(),
                    SimOptions {
                        scheduler: SchedulerKind::Heap,
                        ..SimOptions::default()
                    },
                ),
            ),
            (
                &reference,
                &EmpiricalRunner::run_with(
                    cfg(),
                    SimOptions {
                        scheduler: SchedulerKind::Wheel,
                        ..SimOptions::reference()
                    },
                ),
            ),
            // The media kernel only changes payload *bytes*, which never
            // enter the scored physics: swapping it must be digest-exact.
            (
                &fast,
                &EmpiricalRunner::run_with(
                    cfg(),
                    SimOptions {
                        media_kernel: MediaKernel::Reference,
                        ..SimOptions::default()
                    },
                ),
            ),
            // The signalling path only changes the in-memory transport of
            // messages between nodes — the analytic wire length equals the
            // serialized length exactly — so swapping it is digest-exact.
            (
                &fast,
                &EmpiricalRunner::run_with(
                    cfg(),
                    SimOptions {
                        signalling: SignallingPath::Reference,
                        ..SimOptions::default()
                    },
                ),
            ),
        ] {
            assert_eq!(a.digest(), b.digest(), "engine option leaked");
        }
        // Across media paths the signalling plane is identical and the
        // media plane statistically equivalent (phase quantisation shifts
        // emission by ≤312 µs; per-packet spacing is unchanged).
        assert_eq!(fast.attempted, reference.attempted);
        assert_eq!(fast.completed, reference.completed);
        assert_eq!(fast.blocked, reference.blocked);
        assert!((fast.monitor.mos_mean - reference.monitor.mos_mean).abs() < 0.05);
        let ratio = fast.monitor.rtp_packets as f64 / reference.monitor.rtp_packets as f64;
        assert!((ratio - 1.0).abs() < 0.02, "rtp volume ratio {ratio}");
    }

    #[test]
    fn different_seeds_differ() {
        let a = EmpiricalRunner::run(EmpiricalConfig::smoke(1));
        let b = EmpiricalRunner::run(EmpiricalConfig::smoke(2));
        // Arrival times differ, so event counts almost surely differ.
        assert_ne!(
            (a.events_processed, a.monitor.rtp_packets),
            (b.events_processed, b.monitor.rtp_packets)
        );
    }

    #[test]
    fn overload_blocks_calls() {
        // 5 channels, 20 E offered: Erlang-B says ~76% blocking. Use a
        // long placement window so the estimate has a few hundred samples.
        let mut cfg = EmpiricalConfig::smoke(3);
        cfg.erlangs = 20.0;
        cfg.placement_window_s = 300.0;
        cfg.media = MediaMode::Off;
        let r = EmpiricalRunner::run(cfg);
        assert!(r.attempted > 300, "enough samples: {}", r.attempted);
        assert!(r.blocked > 0, "must block under overload");
        assert!(
            (r.observed_pb - r.analytic_pb).abs() < 0.08,
            "observed {} vs analytic {}",
            r.observed_pb,
            r.analytic_pb
        );
        assert_eq!(r.peak_channels, 5, "pool saturates");
    }

    #[test]
    fn no_blocking_when_overprovisioned() {
        let mut cfg = EmpiricalConfig::smoke(4);
        cfg.erlangs = 2.0;
        cfg.channels = 50;
        cfg.media = MediaMode::Off;
        let r = EmpiricalRunner::run(cfg);
        assert_eq!(r.blocked, 0);
        assert_eq!(r.observed_pb, 0.0);
    }

    #[test]
    fn media_off_still_counts_signalling() {
        let mut cfg = EmpiricalConfig::smoke(5);
        cfg.media = MediaMode::Off;
        let r = EmpiricalRunner::run(cfg);
        assert_eq!(r.monitor.rtp_packets, 0);
        assert!(r.monitor.sip_total > 0);
        assert!(r.completed > 0);
        assert!(r.monitor.mos_mean.is_nan(), "no media, no MOS");
    }

    #[test]
    fn rtp_rate_is_100_per_call_second() {
        // The paper's anchor: ~100 RTP messages per call-second observed
        // at the endpoints (50 pps in each direction).
        let mut cfg = EmpiricalConfig::smoke(6);
        cfg.erlangs = 4.0;
        cfg.channels = 20;
        cfg.holding = HoldingDist::Fixed(20.0);
        cfg.placement_window_s = 60.0;
        let r = EmpiricalRunner::run(cfg);
        assert!(r.completed >= 5, "sample size: {r:?}");
        let call_seconds: f64 = r.completed as f64 * 20.0;
        let per_call_second = r.monitor.rtp_packets as f64 / call_seconds;
        assert!(
            (per_call_second - 100.0).abs() < 8.0,
            "rtp per call-second = {per_call_second}"
        );
    }

    #[test]
    fn silence_suppression_cuts_media_volume() {
        // The paper's testbed speaks continuously; with VAD on, the
        // conversational model transmits during ~42% of slots, so RTP
        // volume drops by roughly the inactivity factor. Blocking is a
        // signalling property and must not move.
        let mut continuous = EmpiricalConfig::smoke(14);
        continuous.erlangs = 3.0;
        continuous.holding = HoldingDist::Fixed(20.0);
        continuous.placement_window_s = 40.0;
        let mut vad = continuous.clone();
        vad.silence_suppression = true;
        let on = EmpiricalRunner::run(continuous);
        let off = EmpiricalRunner::run(vad);
        assert!(on.monitor.rtp_packets > 0 && off.monitor.rtp_packets > 0);
        let ratio = off.monitor.rtp_packets as f64 / on.monitor.rtp_packets as f64;
        assert!(
            ratio > 0.25 && ratio < 0.60,
            "VAD transmits ~42% of slots: ratio={ratio}"
        );
        assert_eq!(on.blocked, off.blocked, "admission unchanged");
        assert_eq!(on.attempted, off.attempted);
        // Relay CPU drops with the packet volume.
        assert!(off.cpu_mean < on.cpu_mean);
    }

    #[test]
    fn sip_ladder_is_13_messages_per_completed_call() {
        let mut cfg = EmpiricalConfig::smoke(8);
        cfg.media = MediaMode::Off;
        cfg.erlangs = 2.0;
        cfg.channels = 50; // no blocking
        let r = EmpiricalRunner::run(cfg);
        assert_eq!(r.blocked, 0);
        // Discount registrations (2 messages each: REGISTER + 200).
        let reg_msgs = 2 * 2 * u64::from(EmpiricalConfig::smoke(8).user_pool);
        let call_msgs = r.monitor.sip_total - reg_msgs;
        let per_call = call_msgs as f64 / r.completed as f64;
        // 13 on-the-wire messages per the Fig. 2 ladder; abandoned calls
        // contribute partial ladders, so allow slack.
        assert!(
            (per_call - 13.0).abs() < 1.5,
            "sip per call = {per_call} (total {call_msgs}, completed {})",
            r.completed
        );
    }
}
