//! The §IV server-farm study — the paper's other scaling alternative,
//! implemented and measured.
//!
//! Splitting a load across k servers of N/k channels each is *worse* than
//! one pooled server of N channels (trunking efficiency: Erlang-B is
//! super-additive in pool size). This module measures that penalty
//! empirically with round-robin dispatch and compares it against the
//! analytical prediction, so a deployer can weigh "buy a bigger box"
//! against "add more boxes + policy".

use crate::experiment::{EmpiricalConfig, EmpiricalRunner};
use crate::sweep::{self, ProgressMeter, SweepTask};
use serde::{Deserialize, Serialize};
use teletraffic::{blocking_probability, Erlangs};

/// One farm configuration's outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FarmRow {
    /// Number of servers.
    pub servers: u32,
    /// Channels per server.
    pub channels_each: u32,
    /// Total channels across the farm.
    pub total_channels: u32,
    /// Observed steady-state blocking, %.
    pub empirical_pb_pct: f64,
    /// Analytical prediction for round-robin split:
    /// `B(A/k, N/k)` per server, %.
    pub analytic_split_pct: f64,
    /// Analytical blocking had the channels been pooled: `B(A, N_total)`, %.
    pub analytic_pooled_pct: f64,
    /// Peak channels on the busiest server.
    pub busiest_peak: u32,
}

/// The configuration one farm replication runs.
fn farm_cfg(erlangs: f64, servers: u32, channels_each: u32, seed: u64) -> EmpiricalConfig {
    let mut cfg = EmpiricalConfig::signalling_only(erlangs, seed);
    cfg.servers = servers;
    cfg.channels = channels_each;
    cfg.placement_window_s = 600.0;
    cfg
}

/// Compare farm layouts carrying the same offered load with the same
/// total channel count: 1×N, 2×N/2, … — the trunking-efficiency study.
/// Blocking is averaged over `reps` independent replications per layout;
/// the `(layout, rep)` grid fans out through the budgeted work-stealing
/// executor ([`crate::sweep`]).
#[must_use]
pub fn farm_study(
    erlangs: f64,
    total_channels: u32,
    layouts: &[u32],
    reps: u64,
    seed: u64,
) -> Vec<FarmRow> {
    farm_study_with(erlangs, total_channels, layouts, reps, seed, None)
}

/// [`farm_study`] with optional progress reporting (the CLI's
/// `--progress`).
#[must_use]
pub fn farm_study_with(
    erlangs: f64,
    total_channels: u32,
    layouts: &[u32],
    reps: u64,
    seed: u64,
    progress: Option<&ProgressMeter>,
) -> Vec<FarmRow> {
    let reps = reps.max(1);
    // Cell-major task order: runs for layout `c` are the contiguous
    // slice [c·reps, (c+1)·reps), already in replication order.
    let tasks: Vec<SweepTask> = layouts
        .iter()
        .enumerate()
        .flat_map(|(cell, &servers)| {
            let cost = sweep::run_cost(&farm_cfg(erlangs, servers, total_channels / servers, 0));
            (0..reps).map(move |rep| SweepTask { cell, rep, cost })
        })
        .collect();
    let all_runs = sweep::run_sweep_with(
        &tasks,
        |t| {
            let servers = layouts[t.cell];
            EmpiricalRunner::run(farm_cfg(
                erlangs,
                servers,
                total_channels / servers,
                des::stream_seed(seed, t.rep),
            ))
        },
        progress,
    );
    layouts
        .iter()
        .enumerate()
        .map(|(cell, &servers)| {
            let channels_each = total_channels / servers;
            let runs = &all_runs[cell * reps as usize..(cell + 1) * reps as usize];
            let mean_pb = runs.iter().map(|r| r.steady_pb).sum::<f64>() / runs.len() as f64;
            let busiest_peak = runs.iter().map(|r| r.peak_channels).max().unwrap_or(0);
            // Random dispatch splits the Poisson stream into k thinned
            // Poisson streams of rate λ/k, each offered to N/k channels.
            let analytic_split =
                blocking_probability(Erlangs(erlangs / f64::from(servers)), channels_each);
            let analytic_pooled = blocking_probability(Erlangs(erlangs), channels_each * servers);
            FarmRow {
                servers,
                channels_each,
                total_channels: channels_each * servers,
                empirical_pb_pct: mean_pb * 100.0,
                analytic_split_pct: analytic_split * 100.0,
                analytic_pooled_pct: analytic_pooled * 100.0,
                busiest_peak,
            }
        })
        .collect()
}

/// Render the study.
#[must_use]
pub fn render_farm(erlangs: f64, rows: &[FarmRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Server-farm study at {erlangs:.0} E offered, equal total channels"
    );
    let _ = writeln!(
        out,
        "{:>8} {:>10} {:>8} {:>11} {:>12} {:>12} {:>8}",
        "servers", "ch/server", "total", "empirical", "B(A/k,N/k)", "B(A,Ntot)", "peak"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:>8} {:>10} {:>8} {:>10.2}% {:>11.2}% {:>11.2}% {:>8}",
            r.servers,
            r.channels_each,
            r.total_channels,
            r.empirical_pb_pct,
            r.analytic_split_pct,
            r.analytic_pooled_pct,
            r.busiest_peak
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Small-system version of the study (fast in debug builds).
    fn small_farm(servers: u32, seed: u64) -> crate::experiment::RunResult {
        let mut cfg = EmpiricalConfig::signalling_only(20.0, seed);
        cfg.servers = servers;
        cfg.channels = 24 / servers;
        cfg.holding = loadgen::HoldingDist::Exponential(30.0);
        cfg.placement_window_s = 400.0;
        EmpiricalRunner::run(cfg)
    }

    #[test]
    fn split_pools_block_more_than_pooled() {
        // 20 E onto 24 channels: pooled blocks ~7%, split 2×12 blocks
        // ~21% per Erlang-B. The empirical farm must show the penalty.
        let pooled: f64 = (0..3).map(|s| small_farm(1, s).steady_pb).sum::<f64>() / 3.0;
        let split: f64 = (0..3).map(|s| small_farm(2, s).steady_pb).sum::<f64>() / 3.0;
        let analytic_pooled = blocking_probability(Erlangs(20.0), 24);
        let analytic_split = blocking_probability(Erlangs(10.0), 12);
        // Analytic gap is ~4 pp (11.9% vs 7.8%); require at least half of
        // it to show through the Monte-Carlo noise.
        assert!(
            split > pooled + 0.02,
            "trunking efficiency: split {split:.3} vs pooled {pooled:.3}"
        );
        assert!(
            (pooled - analytic_pooled).abs() < 0.05,
            "pooled {pooled:.3} vs {analytic_pooled:.3}"
        );
        assert!(
            (split - analytic_split).abs() < 0.06,
            "split {split:.3} vs {analytic_split:.3}"
        );
    }

    #[test]
    fn farm_distributes_calls_evenly() {
        let r = small_farm(2, 9);
        assert_eq!(r.per_server_peaks.len(), 2);
        // Round-robin: both servers carry comparable peaks.
        let (a, b) = (r.per_server_peaks[0], r.per_server_peaks[1]);
        assert!(a > 0 && b > 0);
        assert!(a.abs_diff(b) <= 4, "peaks {a} vs {b}");
        // Calls complete through both servers.
        assert!(r.completed > 100);
        assert_eq!(
            r.attempted,
            r.completed + r.blocked + r.failed + r.abandoned
        );
    }

    #[test]
    fn farm_media_also_works() {
        // Full media through a 2-server farm: packets relay correctly and
        // MOS is scored per call regardless of which server bridged it.
        let mut cfg = crate::experiment::EmpiricalConfig::smoke(77);
        cfg.servers = 2;
        cfg.erlangs = 4.0;
        cfg.channels = 6;
        let r = EmpiricalRunner::run(cfg);
        assert!(r.completed > 0);
        assert!(r.monitor.rtp_packets > 0);
        assert!(r.monitor.mos_mean > 4.0, "mos={}", r.monitor.mos_mean);
    }

    #[test]
    fn render_shows_layouts() {
        let rows = vec![FarmRow {
            servers: 2,
            channels_each: 82,
            total_channels: 164,
            empirical_pb_pct: 9.0,
            analytic_split_pct: 9.4,
            analytic_pooled_pct: 4.4,
            busiest_peak: 82,
        }];
        let text = render_farm(150.0, &rows);
        assert!(text.contains("150 E"));
        assert!(text.contains("82"));
    }
}
