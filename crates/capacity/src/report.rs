//! Text and JSON renderers for the experiment outputs.

use crate::experiment::RunResult;
use crate::figures::{Fig3Curve, Fig6Point, Fig7Curve};
use crate::table1::Table1Row;
use std::fmt::Write as _;

/// Render Table I in the paper's transposed layout (one column per
/// workload).
#[must_use]
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table I: Simulation results (empirical method)");
    let hdr = |label: &str| format!("{label:<24}");
    let _ = write!(out, "{}", hdr("Workload in Erlangs (A)"));
    for r in rows {
        let _ = write!(out, "{:>12.0}", r.erlangs);
    }
    let _ = writeln!(out);
    let mut line = |label: &str, f: &dyn Fn(&Table1Row) -> String| {
        let _ = write!(out, "{}", hdr(label));
        for r in rows {
            let _ = write!(out, "{:>12}", f(r));
        }
        let _ = writeln!(out);
    };
    line("Channels used (N)", &|r| r.channels_used.to_string());
    line("CPU usage", &|r| {
        format!("{:.0}-{:.0}%", r.cpu_band_pct.0, r.cpu_band_pct.1)
    });
    line("MOS", &|r| format!("{:.2}", r.mos));
    line("RTP messages", &|r| r.rtp_messages.to_string());
    line("Blocked calls (%)", &|r| format!("{:.1}", r.blocked_pct));
    line("SIP messages (total)", &|r| r.sip_total.to_string());
    line("  INVITE", &|r| r.invite.to_string());
    line("  100 TRY", &|r| r.trying_100.to_string());
    line("  180 RING", &|r| r.ringing_180.to_string());
    line("  200 OK", &|r| r.ok_200.to_string());
    line("  ACK", &|r| r.ack.to_string());
    line("  BYE", &|r| r.bye.to_string());
    line("  Error msgs", &|r| r.error_msgs.to_string());
    line("Calls attempted", &|r| r.attempted.to_string());
    line("Calls completed", &|r| r.completed.to_string());
    out
}

/// Render Fig. 3 as an aligned series table (`N` vs `Pb%` per workload).
#[must_use]
pub fn render_fig3(curves: &[Fig3Curve], sample_every: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 3: Erlang-B blocking probability vs channels (Pb%)"
    );
    let _ = write!(out, "{:>6}", "N");
    for c in curves {
        let _ = write!(out, "{:>9.0}E", c.erlangs);
    }
    let _ = writeln!(out);
    let n_points = curves.first().map_or(0, |c| c.points.len());
    for i in (0..n_points).step_by(sample_every.max(1)) {
        let _ = write!(out, "{:>6}", curves[0].points[i].0);
        for c in curves {
            let _ = write!(out, "{:>10.3}", c.points[i].1);
        }
        let _ = writeln!(out);
    }
    out
}

/// Render the Fig. 6 comparison.
#[must_use]
pub fn render_fig6(points: &[Fig6Point]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 6: empirical vs Erlang-B blocking (Pb%) — N rails 160/165/170"
    );
    let _ = writeln!(
        out,
        "{:>8} {:>12} {:>8} {:>10} {:>10} {:>10}",
        "Erlangs", "empirical", "±95%CI", "B(A,160)", "B(A,165)", "B(A,170)"
    );
    for p in points {
        let _ = writeln!(
            out,
            "{:>8.0} {:>12.2} {:>8.2} {:>10.2} {:>10.2} {:>10.2}",
            p.erlangs,
            p.empirical_pb_pct,
            p.ci_half_width_pct,
            p.analytic_160,
            p.analytic_165,
            p.analytic_170
        );
    }
    out
}

/// Render the Fig. 7 curves.
#[must_use]
pub fn render_fig7(curves: &[Fig7Curve], sample_every: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 7: blocking vs calling population share (8000 users, N=165)"
    );
    let _ = write!(out, "{:>6}", "pop%");
    for c in curves {
        let _ = write!(out, "{:>9.1}min", c.duration_min);
    }
    let _ = writeln!(out);
    let n_points = curves.first().map_or(0, |c| c.points.len());
    for i in (0..n_points).step_by(sample_every.max(1)) {
        let _ = write!(out, "{:>6.0}", curves[0].points[i].0);
        for c in curves {
            let _ = write!(out, "{:>12.2}", c.points[i].1);
        }
        let _ = writeln!(out);
    }
    out
}

/// Render the robustness summary of a run: overload-control and retry
/// accounting plus per-fault recovery times. Meaningful when the run had
/// a fault schedule, shedding or retries configured; harmless otherwise.
#[must_use]
pub fn render_robustness(r: &RunResult) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Robustness summary ({} E offered)", r.erlangs);
    let _ = writeln!(out, "{:<28}{:>10}", "Calls attempted", r.attempted);
    let _ = writeln!(out, "{:<28}{:>10}", "Completed first try", r.completed);
    let _ = writeln!(out, "{:<28}{:>10}", "Shed (503)", r.shed);
    let _ = writeln!(out, "{:<28}{:>10}", "Retries sent", r.retries);
    let _ = writeln!(out, "{:<28}{:>10}", "Shed then completed", r.shed_then_ok);
    let _ = writeln!(out, "{:<28}{:>10}", "Blocked (486)", r.blocked);
    let _ = writeln!(out, "{:<28}{:>10}", "Failed", r.failed);
    let _ = writeln!(out, "{:<28}{:>10}", "Goodput (calls)", r.goodput);
    let goodput_ratio = if r.attempted == 0 {
        0.0
    } else {
        100.0 * r.goodput as f64 / r.attempted as f64
    };
    let _ = writeln!(out, "{:<28}{:>9.1}%", "Goodput ratio", goodput_ratio);
    let _ = write!(out, "{:<28}", "Peak-in-use gauge/server");
    for p in &r.per_server_peak_in_use {
        let _ = write!(out, "{p:>6}");
    }
    let _ = writeln!(out);
    if !r.recoveries.is_empty() {
        let _ = writeln!(
            out,
            "{:>8} {:>10} {:>8}  fault",
            "fault@s", "baseline/s", "ttr(s)"
        );
        for rec in &r.recoveries {
            // An absent recovery is censored, not eternal: the run only
            // watched `censor_horizon_s` seconds past the fault.
            let ttr = rec.time_to_recover_s.map_or_else(
                || format!(">{:.0}", rec.censor_horizon_s),
                |t| format!("{t:.0}"),
            );
            let _ = writeln!(
                out,
                "{:>8.0} {:>10.2} {:>8}  {}",
                rec.fault_at_s, rec.baseline_rate, ttr, rec.fault
            );
        }
    }
    out
}

/// Render the engine-throughput summary of a run: how much simulated
/// work the event loop did per wall-clock second.
#[must_use]
pub fn render_throughput(r: &RunResult) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Engine throughput ({} E offered)", r.erlangs);
    let _ = writeln!(out, "{:<28}{:>14}", "Events processed", r.events_processed);
    let _ = writeln!(out, "{:<28}{:>13.1}s", "Simulated time", r.sim_seconds);
    let _ = writeln!(out, "{:<28}{:>13.2}s", "Wall clock", r.wall_clock_s);
    let _ = writeln!(
        out,
        "{:<28}{:>14}",
        "Events/sec",
        format!("{:.0}", r.events_per_sec)
    );
    let speedup = if r.wall_clock_s > 0.0 {
        r.sim_seconds / r.wall_clock_s
    } else {
        0.0
    };
    let _ = writeln!(out, "{:<28}{:>13.0}x", "Real-time speedup", speedup);
    if r.phases.enabled {
        let _ = writeln!(out, "Wall-clock phase breakdown");
        let pct = |s: f64| {
            if r.wall_clock_s > 0.0 {
                100.0 * s / r.wall_clock_s
            } else {
                0.0
            }
        };
        for (label, s) in [
            ("  scheduler/dispatch", r.phases.scheduler_s),
            ("  signalling", r.phases.signalling_s),
            ("  media encode", r.phases.media_encode_s),
            ("  relay", r.phases.relay_s),
            ("  scoring", r.phases.scoring_s),
            ("  sip wire parse", r.phases.sip_wire_s),
            ("  sdp parse/build", r.phases.sdp_wire_s),
            ("  sync barrier", r.phases.sync_barrier_s),
        ] {
            let _ = writeln!(out, "{label:<28}{s:>12.3}s {:>5.1}%", pct(s));
        }
    }
    out
}

/// Serialize any experiment artifact to pretty JSON.
pub fn to_json<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string_pretty(value).unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures;

    fn sample_row(erlangs: f64) -> Table1Row {
        Table1Row {
            erlangs,
            channels_used: 42,
            cpu_band_pct: (15.0, 20.0),
            mos: 4.41,
            rtp_messages: 722_216,
            blocked_pct: 0.0,
            sip_total: 780,
            invite: 120,
            trying_100: 60,
            ringing_180: 120,
            ok_200: 240,
            ack: 120,
            bye: 120,
            error_msgs: 0,
            attempted: 60,
            completed: 60,
        }
    }

    #[test]
    fn table1_rendering_contains_all_rows() {
        let text = render_table1(&[sample_row(40.0), sample_row(80.0)]);
        for needle in [
            "Workload in Erlangs",
            "Channels used",
            "CPU usage",
            "MOS",
            "RTP messages",
            "Blocked calls",
            "INVITE",
            "100 TRY",
            "Error msgs",
            "722216",
            "4.41",
            "15-20%",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn fig3_rendering_samples_rows() {
        let curves = figures::fig3(100);
        let text = render_fig3(&curves, 20);
        assert!(text.contains("Figure 3"));
        assert!(text.lines().count() > 4);
        // Contains the 20E..240E headers.
        assert!(text.contains("20E"));
        assert!(text.contains("240E"));
    }

    #[test]
    fn fig7_rendering() {
        let curves = figures::fig7(8000, 165);
        let text = render_fig7(&curves, 10);
        assert!(text.contains("Figure 7"));
        assert!(text.contains("2.0min"));
        assert!(text.contains("3.0min"));
    }

    #[test]
    fn robustness_rendering_lists_faults() {
        use crate::experiment::{EmpiricalConfig, EmpiricalRunner, MediaMode};
        use des::SimDuration;
        use faults::{FaultKind, FaultSchedule};
        let mut cfg = EmpiricalConfig::smoke(11);
        cfg.media = MediaMode::Off;
        cfg.faults = FaultSchedule::new().at(
            8.0,
            FaultKind::PbxCrash {
                pbx: 0,
                restart_after: SimDuration::from_secs(2),
            },
        );
        let r = EmpiricalRunner::run(cfg);
        let text = render_robustness(&r);
        for needle in ["Shed (503)", "Retries sent", "Goodput", "PbxCrash"] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn robustness_rendering_censors_unrecovered_faults_with_horizon() {
        use crate::experiment::{EmpiricalConfig, EmpiricalRunner, FaultRecovery, MediaMode};
        let mut cfg = EmpiricalConfig::smoke(13);
        cfg.media = MediaMode::Off;
        let mut r = EmpiricalRunner::run(cfg);
        r.recoveries = vec![FaultRecovery {
            fault_at_s: 20.0,
            fault: "LinkPartition".to_owned(),
            baseline_rate: 4.0,
            time_to_recover_s: None,
            censor_horizon_s: 37.0,
        }];
        let text = render_robustness(&r);
        assert!(
            text.contains(">37"),
            "censored recovery must show the horizon, not a blank:\n{text}"
        );
        assert!(!text.contains("never"), "no open-ended 'never' claim");
    }

    #[test]
    fn throughput_rendering() {
        use crate::experiment::{EmpiricalConfig, EmpiricalRunner};
        let r = EmpiricalRunner::run(EmpiricalConfig::smoke(12));
        let text = render_throughput(&r);
        for needle in [
            "Events processed",
            "Wall clock",
            "Events/sec",
            "Real-time speedup",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        assert!(r.wall_clock_s > 0.0);
        assert!(r.events_per_sec > 0.0);
    }

    #[test]
    fn json_round_trips() {
        let row = sample_row(40.0);
        let json = to_json(&row);
        let back: Table1Row = serde_json::from_str(&json).unwrap();
        assert_eq!(back.rtp_messages, row.rtp_messages);
        assert_eq!(back.erlangs, row.erlangs);
    }
}
