//! Table I — "Simulation results (empirical method)".
//!
//! For each workload A ∈ {40, 80, 120, 160, 200, 240} Erlangs the paper
//! reports: channels used, CPU band, MOS, RTP message count, blocked-call
//! percentage, and SIP message counts by type. [`table1`] regenerates all
//! of it from empirical runs.

use crate::experiment::{EmpiricalConfig, EmpiricalRunner};
use serde::{Deserialize, Serialize};

/// The paper's six workloads, in Erlangs.
pub const PAPER_WORKLOADS: [f64; 6] = [40.0, 80.0, 120.0, 160.0, 200.0, 240.0];

/// One column of Table I.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Row {
    /// Workload in Erlangs (A).
    pub erlangs: f64,
    /// Peak concurrent channels used (N).
    pub channels_used: u32,
    /// CPU utilisation band (min, max) over 5 s windows, in percent.
    pub cpu_band_pct: (f64, f64),
    /// Mean MOS over completed calls.
    pub mos: f64,
    /// RTP messages observed at the endpoints.
    pub rtp_messages: u64,
    /// Blocked calls as a percentage of attempts.
    pub blocked_pct: f64,
    /// Total SIP messages.
    pub sip_total: u64,
    /// INVITE count.
    pub invite: u64,
    /// 100 Trying count.
    pub trying_100: u64,
    /// 180 Ringing count.
    pub ringing_180: u64,
    /// 200 OK count.
    pub ok_200: u64,
    /// ACK count.
    pub ack: u64,
    /// BYE count.
    pub bye: u64,
    /// Error (≥400) responses.
    pub error_msgs: u64,
    /// Calls attempted.
    pub attempted: u64,
    /// Calls completed.
    pub completed: u64,
}

/// Run one Table-I cell.
#[must_use]
pub fn table1_cell(config: EmpiricalConfig) -> Table1Row {
    let r = EmpiricalRunner::run(config);
    Table1Row {
        erlangs: r.erlangs,
        channels_used: r.peak_channels,
        cpu_band_pct: (r.cpu_band.0 * 100.0, r.cpu_band.1 * 100.0),
        mos: r.monitor.mos_mean,
        rtp_messages: r.monitor.rtp_packets,
        blocked_pct: r.observed_pb * 100.0,
        sip_total: r.monitor.sip_total,
        invite: r.monitor.sip_request_count("INVITE"),
        trying_100: r.monitor.sip_response_count(100),
        ringing_180: r.monitor.sip_response_count(180),
        ok_200: r.monitor.sip_response_count(200),
        ack: r.monitor.sip_request_count("ACK"),
        bye: r.monitor.sip_request_count("BYE"),
        error_msgs: r.monitor.sip_error_count(),
        attempted: r.attempted,
        completed: r.completed,
    }
}

/// Regenerate the full Table I at the paper's workloads.
#[must_use]
pub fn table1(seed: u64) -> Vec<Table1Row> {
    PAPER_WORKLOADS
        .iter()
        .map(|&a| table1_cell(EmpiricalConfig::table1(a, seed)))
        .collect()
}

/// A scaled-down Table I (shorter window, sparser encoding) for quick
/// smoke runs and CI; same workloads, same shape, ~50× less work.
#[must_use]
pub fn table1_scaled(seed: u64, scale: f64) -> Vec<Table1Row> {
    PAPER_WORKLOADS
        .iter()
        .map(|&a| {
            let mut cfg = EmpiricalConfig::table1(a, seed);
            cfg.holding = loadgen::HoldingDist::Fixed(120.0 * scale);
            cfg.placement_window_s = 180.0 * scale;
            cfg.media = crate::experiment::MediaMode::PerPacket { encode_every: 250 };
            table1_cell(cfg)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_table_has_paper_shape() {
        // 1/20th scale: 9 s placement, 6 s calls. Still hundreds of calls
        // at the top workloads.
        let rows = table1_scaled(11, 0.05);
        assert_eq!(rows.len(), 6);

        // Zero blocking at A ≤ 120 (the paper's key observation).
        for row in &rows[..3] {
            assert_eq!(row.blocked_pct, 0.0, "A={}", row.erlangs);
        }
        // Blocking appears at A ≥ 200 and grows with load. (At exactly
        // 160 E vs 165 channels the short scaled window may or may not
        // block — the full-length run in the bench does.)
        assert!(rows[4].blocked_pct > 0.0, "A=200 must block");
        assert!(rows[5].blocked_pct > rows[4].blocked_pct * 0.8);

        // Channels used grows with workload and caps near the pool size.
        assert!(rows[0].channels_used < rows[5].channels_used);
        assert!(rows[5].channels_used <= 165);
        assert!(rows[4].channels_used >= 160, "overload saturates the pool");

        // MOS stays above 4 everywhere (the paper's quality result).
        for row in &rows {
            assert!(row.mos > 4.0, "A={}: MOS={}", row.erlangs, row.mos);
        }

        // CPU band grows with workload.
        assert!(rows[0].cpu_band_pct.1 < rows[5].cpu_band_pct.1);

        // RTP messages scale with carried calls.
        assert!(rows[0].rtp_messages < rows[2].rtp_messages);

        // SIP accounting is self-consistent: every attempt INVITEs twice
        // on the wire except blocked/failed ones (once), and nearly every
        // attempt draws either a 100 Trying or an error. (A handful of
        // messages can vanish outright at the overload workloads, where
        // the configured wire-error ramp is active.)
        for row in &rows {
            assert!(row.invite >= row.attempted, "A={}", row.erlangs);
            assert!(row.ack >= row.completed);
            assert!(row.bye >= row.completed);
            let resolved = row.trying_100 + row.error_msgs;
            assert!(
                resolved as f64 >= row.attempted as f64 * 0.95,
                "A={}: {} resolved of {}",
                row.erlangs,
                resolved,
                row.attempted
            );
        }
    }

    #[test]
    fn blocked_calls_emit_error_messages() {
        let mut cfg = EmpiricalConfig::smoke(13);
        cfg.erlangs = 20.0;
        cfg.channels = 5;
        cfg.media = crate::experiment::MediaMode::Off;
        let row = table1_cell(cfg);
        assert!(row.blocked_pct > 0.0);
        assert!(row.error_msgs > 0, "486s were counted");
    }
}
