//! The sweep plane: a budgeted work-stealing executor for campaign-scale
//! studies.
//!
//! The paper's headline artifacts are *sweeps* — Fig. 6 blocking-vs-load
//! over replications, the §V capacity-planning grids — and a sweep is a
//! bag of independent `(cell, replication)` tasks, each a pure function
//! of its indexed seed. This module schedules that bag onto worker
//! threads borrowed from the process-wide [`des::pool`] budget:
//!
//! * **Work stealing** — tasks are dealt longest-expected-first onto
//!   per-worker deques; a worker pops its own queue from the front and,
//!   when empty, steals from the back of a victim's queue. Long cells
//!   start first, short cells backfill, and no worker idles while work
//!   remains.
//! * **Budgeted** — workers come from [`des::pool::acquire`], the same
//!   budget the within-run sharded executor ([`crate::shard`]) draws
//!   from. A sweep cell that itself runs sharded nests cooperatively:
//!   its inner `acquire` sees only what the sweep left free and degrades
//!   toward inline execution rather than oversubscribing the host.
//! * **Deterministic** — every result lands in a slot keyed by its task
//!   index, and aggregation happens in index order after the join, so
//!   means, CI half-widths and report text are byte-identical to the
//!   sequential reference at any worker count and any completion order.
//!
//! The executor pairs with the shared immutable precompute hosted around
//! the workspace ([`teletraffic::erlang_b::shared_curve`], the
//! [`pbx_sim::Directory::shared_subscribers`] prototype, pre-seeded SDP
//! origin atoms, [`rtpcore::g711::warm`]): per-replication setup cost is
//! paid once per process and amortized across the whole sweep. The
//! adaptive mode ([`adaptive_sweep`]) adds a sequential stopping rule on
//! indexed seeds so sweeps stop spending replications where the estimate
//! has already converged.

use crate::experiment::EmpiricalConfig;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// One schedulable unit of a sweep: replication `rep` of sweep cell
/// `cell`, with an expected-work estimate used for longest-first
/// ordering. Cost only influences scheduling order, never results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepTask {
    /// Sweep-cell index (a load point, an algorithm × multiplier pair, a
    /// farm layout…) — whatever the caller is sweeping.
    pub cell: usize,
    /// Replication index within the cell; combined with the sweep seed
    /// via [`des::stream_seed`] by the caller, so `(cell, rep)` names the
    /// run regardless of which worker executes it.
    pub rep: u64,
    /// Expected work (arbitrary units, larger = scheduled earlier).
    pub cost: u64,
}

/// Expected-work estimate for one replication of `cfg`, in
/// pending-events × simulated-seconds units: the same
/// [`EmpiricalConfig::expected_pending_events`] model that pre-sizes the
/// scheduler, scaled by the placement window. Heavier loads and longer
/// windows sort first so they cannot become the straggler tail of the
/// sweep.
#[must_use]
pub fn run_cost(cfg: &EmpiricalConfig) -> u64 {
    let window = cfg.placement_window_s.max(1.0) as u64;
    cfg.expected_pending_events() as u64 * window
}

/// Progress accounting for a long sweep, printed to **stderr** (stdout
/// stays clean for `--json` pipelines) and only when enabled — the
/// `--progress` CLI flag. All counters are atomic: workers update them
/// concurrently, lines are whole `eprintln!` calls.
#[derive(Debug)]
pub struct ProgressMeter {
    enabled: bool,
    /// When true, [`run_sweep_with`] announces a cell as done the moment
    /// its tasks drain from the current batch (the fixed-replication
    /// case). Adaptive sweeps set this false and announce convergence
    /// themselves — a drained batch is not a converged cell there.
    announce_batch_cells: bool,
    cells_total: usize,
    cells_done: AtomicUsize,
    reps_spent: AtomicU64,
    reps_budget: u64,
}

impl ProgressMeter {
    /// A meter over `cells_total` cells with a total replication budget
    /// of `reps_budget`; `enabled: false` makes every method a no-op
    /// print-wise (counters still track).
    #[must_use]
    pub fn new(cells_total: usize, reps_budget: u64, enabled: bool) -> Self {
        ProgressMeter {
            enabled,
            announce_batch_cells: true,
            cells_total,
            cells_done: AtomicUsize::new(0),
            reps_spent: AtomicU64::new(0),
            reps_budget,
        }
    }

    /// Like [`ProgressMeter::new`] but cells are announced by the
    /// adaptive driver on convergence, not by batch drain.
    #[must_use]
    pub fn for_adaptive(cells_total: usize, reps_budget: u64, enabled: bool) -> Self {
        ProgressMeter {
            announce_batch_cells: false,
            ..ProgressMeter::new(cells_total, reps_budget, enabled)
        }
    }

    /// Record one finished replication.
    pub fn note_rep(&self) {
        self.reps_spent.fetch_add(1, Ordering::Relaxed);
    }

    /// Record (and, when enabled, print) one finished cell.
    pub fn cell_done(&self, cell: usize) {
        let done = self.cells_done.fetch_add(1, Ordering::Relaxed) + 1;
        if self.enabled {
            eprintln!(
                "sweep: cell {cell} done — {done}/{} cells, {}/{} reps",
                self.cells_total,
                self.reps_spent.load(Ordering::Relaxed),
                self.reps_budget
            );
        }
    }

    /// Replications spent so far.
    #[must_use]
    pub fn reps_spent(&self) -> u64 {
        self.reps_spent.load(Ordering::Relaxed)
    }

    /// Cells recorded done so far.
    #[must_use]
    pub fn cells_done(&self) -> usize {
        self.cells_done.load(Ordering::Relaxed)
    }
}

/// The sequential reference executor: run every task on the calling
/// thread, in task order. [`run_sweep`] must be indistinguishable from
/// this at any worker count — the property `bench_sweep_json` asserts
/// fatally and `tests/sweep_determinism.rs` propchecks.
pub fn run_sweep_reference<T, F>(tasks: &[SweepTask], f: F) -> Vec<T>
where
    F: Fn(SweepTask) -> T,
{
    tasks.iter().map(|&t| f(t)).collect()
}

/// Run every task, borrowing up to `tasks.len()` workers from the
/// [`des::pool`] budget, and return results **in task order**.
///
/// Scheduling is dynamic (longest-expected-first deal, work stealing),
/// but each result is written to the slot keyed by its task index, so
/// the returned vector — and anything folded from it in order — is
/// byte-identical to [`run_sweep_reference`] regardless of thread count
/// or completion order.
pub fn run_sweep<T, F>(tasks: &[SweepTask], f: F) -> Vec<T>
where
    T: Send + Sync,
    F: Fn(SweepTask) -> T + Sync,
{
    run_sweep_with(tasks, f, None)
}

/// [`run_sweep`] with optional progress accounting.
pub fn run_sweep_with<T, F>(tasks: &[SweepTask], f: F, progress: Option<&ProgressMeter>) -> Vec<T>
where
    T: Send + Sync,
    F: Fn(SweepTask) -> T + Sync,
{
    let n = tasks.len();
    if n == 0 {
        return Vec::new();
    }
    // Per-cell outstanding-task counts for the batch, so the meter can
    // announce a cell the moment its last replication lands.
    let cells = tasks.iter().map(|t| t.cell).max().unwrap_or(0) + 1;
    let mut left = vec![0usize; cells];
    for t in tasks {
        left[t.cell] += 1;
    }
    let outstanding: Vec<AtomicUsize> = left.into_iter().map(AtomicUsize::new).collect();
    let finish = |t: SweepTask| {
        if let Some(m) = progress {
            m.note_rep();
            if outstanding[t.cell].fetch_sub(1, Ordering::Relaxed) == 1 && m.announce_batch_cells {
                m.cell_done(t.cell);
            }
        }
    };

    let permit = des::pool::acquire(n.min(des::pool::total()));
    let workers = permit.workers().min(n);
    if workers <= 1 {
        // Budget exhausted (or a one-task sweep): run inline. This is
        // exactly the sequential reference plus progress accounting.
        return tasks
            .iter()
            .map(|&t| {
                let r = f(t);
                finish(t);
                r
            })
            .collect();
    }

    // Longest-expected-first order, index-tiebroken so the deal is a
    // pure function of the task list.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(tasks[i].cost), i));
    // Deal round-robin onto per-worker deques: worker w starts with the
    // w-th, (w+workers)-th, … longest tasks, so initial loads balance
    // even if no steal ever happens.
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| {
            Mutex::new(
                order
                    .iter()
                    .skip(w)
                    .step_by(workers)
                    .copied()
                    .collect::<VecDeque<usize>>(),
            )
        })
        .collect();
    let slots: Vec<OnceLock<T>> = (0..n).map(|_| OnceLock::new()).collect();

    let worker = |w: usize| {
        loop {
            // Own queue first (front: the longest still-undone task this
            // worker was dealt)…
            let mut task = queues[w].lock().expect("sweep queue").pop_front();
            if task.is_none() {
                // …then steal from the back of the first non-empty
                // victim, scanning in a fixed ring order from w+1.
                for v in 1..workers {
                    let victim = (w + v) % workers;
                    if let Some(i) = queues[victim].lock().expect("sweep queue").pop_back() {
                        task = Some(i);
                        break;
                    }
                }
            }
            let Some(i) = task else { break };
            let t = tasks[i];
            let r = f(t);
            slots[i]
                .set(r)
                .map_err(|_| "sweep slot")
                .expect("one owner");
            finish(t);
        }
    };

    std::thread::scope(|s| {
        for w in 1..workers {
            s.spawn(move || worker(w));
        }
        // The calling thread is worker 0 — the budget's "caller runs
        // inline" degradation, generalized.
        worker(0);
    });
    drop(permit);

    slots
        .into_iter()
        .map(|c| c.into_inner().expect("every task ran"))
        .collect()
}

/// Mean and 95% CI half-width over `samples` (index order, so the fold
/// is bitwise-deterministic). The half-width is `NaN` below two samples
/// — the same convention Fig. 6 has always used.
#[must_use]
pub fn mean_ci(samples: &[f64]) -> (f64, f64) {
    if samples.is_empty() {
        return (f64::NAN, f64::NAN);
    }
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    if samples.len() < 2 {
        return (mean, f64::NAN);
    }
    let var = samples.iter().map(|p| (p - mean).powi(2)).sum::<f64>() / (n - 1.0);
    (mean, 1.96 * (var / n).sqrt())
}

/// The sequential stopping rule for adaptive replication: spend
/// replications on a cell until its 95% CI half-width reaches
/// `ci_target` (same units as the sampled statistic), bounded by
/// `min_reps`/`max_reps`.
#[derive(Debug, Clone, Copy)]
pub struct AdaptivePolicy {
    /// Stop once the CI half-width is at or below this (absolute, in the
    /// statistic's units — percentage points for Fig. 6 blocking).
    pub ci_target: f64,
    /// Replications every cell gets before the rule is consulted (≥ 2,
    /// so a half-width exists).
    pub min_reps: u64,
    /// Hard per-cell budget: a cell that has not converged by here is
    /// reported as-is, `converged: false`.
    pub max_reps: u64,
}

impl AdaptivePolicy {
    /// A policy targeting `ci_target`, with the Fig. 6 defaults for the
    /// replication bounds (5 minimum — the classic fixed count — and a
    /// 16× budget cap).
    #[must_use]
    pub fn targeting(ci_target: f64) -> Self {
        AdaptivePolicy {
            ci_target,
            min_reps: 5,
            max_reps: 80,
        }
    }

    fn clamped(self) -> Self {
        let min_reps = self.min_reps.max(2);
        AdaptivePolicy {
            ci_target: self.ci_target.max(0.0),
            min_reps,
            max_reps: self.max_reps.max(min_reps),
        }
    }
}

/// One cell's adaptive estimate.
#[derive(Debug, Clone)]
pub struct CellEstimate {
    /// Every sampled statistic, in replication order (replication `r`
    /// always used seed index `r`, so this vector is a pure function of
    /// the cell — not of scheduling).
    pub samples: Vec<f64>,
    /// Mean over [`CellEstimate::samples`].
    pub mean: f64,
    /// 95% CI half-width over the samples.
    pub ci_half_width: f64,
    /// Whether the stopping rule was satisfied (false = the cell hit
    /// `max_reps` still wide).
    pub converged: bool,
}

/// Run an adaptive sweep: every cell starts with `policy.min_reps`
/// replications; after each round the stopping rule retires converged
/// cells and doubles-down on the rest, until all cells converge or
/// exhaust `policy.max_reps`. Rounds are barriers: the decision which
/// `(cell, rep)` tasks exist next depends only on completed samples, and
/// samples are keyed by replication index — so the whole procedure,
/// including every intermediate batch, is a pure function of
/// `(cells, policy, sample)` at any worker count.
///
/// `sample(cell, rep)` must be a pure function of its arguments (derive
/// the run seed with [`des::stream_seed`] from the sweep seed and a
/// cell-indexed stream).
pub fn adaptive_sweep<F>(
    cell_costs: &[u64],
    policy: AdaptivePolicy,
    sample: F,
    progress: Option<&ProgressMeter>,
) -> Vec<CellEstimate>
where
    F: Fn(usize, u64) -> f64 + Sync,
{
    let policy = policy.clamped();
    let n_cells = cell_costs.len();
    let mut cells: Vec<CellEstimate> = (0..n_cells)
        .map(|_| CellEstimate {
            samples: Vec::new(),
            mean: f64::NAN,
            ci_half_width: f64::NAN,
            converged: false,
        })
        .collect();
    // (cell, batch size) still in play this round.
    let mut active: Vec<(usize, u64)> = (0..n_cells).map(|c| (c, policy.min_reps)).collect();
    while !active.is_empty() {
        let mut tasks = Vec::new();
        for &(cell, batch) in &active {
            let done = cells[cell].samples.len() as u64;
            for rep in done..done + batch {
                tasks.push(SweepTask {
                    cell,
                    rep,
                    cost: cell_costs[cell],
                });
            }
        }
        let results = run_sweep_with(&tasks, |t| sample(t.cell, t.rep), progress);
        // Tasks were built cell-ascending, rep-ascending; appending in
        // task order keeps every samples vector in replication order.
        for (t, s) in tasks.iter().zip(results) {
            cells[t.cell].samples.push(s);
        }
        let mut next = Vec::new();
        for (cell, _) in active {
            let est = &mut cells[cell];
            let (mean, hw) = mean_ci(&est.samples);
            est.mean = mean;
            est.ci_half_width = hw;
            let spent = est.samples.len() as u64;
            if hw.is_finite() && hw <= policy.ci_target {
                est.converged = true;
                if let Some(m) = progress {
                    m.cell_done(cell);
                }
            } else if spent >= policy.max_reps {
                if let Some(m) = progress {
                    m.cell_done(cell);
                }
            } else {
                // Double down, but never past the budget: half the spent
                // count again (CI shrinks like 1/√n, so halving the
                // half-width needs ~4× the samples — growing in ~1.5×
                // steps converges in a handful of rounds without big
                // overshoot).
                let grow = (spent / 2).max(2).min(policy.max_reps - spent);
                next.push((cell, grow));
            }
        }
        active = next;
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tasks(n: usize, reps: u64) -> Vec<SweepTask> {
        (0..n)
            .flat_map(|cell| {
                (0..reps).map(move |rep| SweepTask {
                    cell,
                    rep,
                    cost: (n - cell) as u64,
                })
            })
            .collect()
    }

    #[test]
    fn executor_matches_reference_at_every_width() {
        let _guard = des::pool::test_guard();
        let ts = tasks(5, 4);
        let f = |t: SweepTask| t.cell as u64 * 1000 + t.rep * 7 + t.cost;
        let want = run_sweep_reference(&ts, f);
        for w in [1usize, 2, 4, 8] {
            des::pool::configure(w);
            assert_eq!(run_sweep(&ts, f), want, "width {w}");
        }
    }

    #[test]
    fn empty_sweep_is_fine() {
        let got: Vec<u64> = run_sweep(&[], |_| unreachable!());
        assert!(got.is_empty());
    }

    #[test]
    fn progress_counts_reps_and_cells() {
        let _guard = des::pool::test_guard();
        des::pool::configure(2);
        let ts = tasks(3, 2);
        let meter = ProgressMeter::new(3, 6, false);
        let _ = run_sweep_with(&ts, |t| t.rep, Some(&meter));
        assert_eq!(meter.reps_spent(), 6);
        assert_eq!(meter.cells_done(), 3);
    }

    #[test]
    fn mean_ci_matches_fig6_formula() {
        let (m, hw) = mean_ci(&[1.0, 2.0, 3.0, 4.0]);
        assert!((m - 2.5).abs() < 1e-12);
        // var = 5/3, hw = 1.96 * sqrt(var/4).
        let want = 1.96 * (5.0 / 3.0 / 4.0_f64).sqrt();
        assert!((hw - want).abs() < 1e-12);
        let (m1, hw1) = mean_ci(&[7.0]);
        assert!((m1 - 7.0).abs() < 1e-12 && hw1.is_nan());
        let (m0, hw0) = mean_ci(&[]);
        assert!(m0.is_nan() && hw0.is_nan());
    }

    #[test]
    fn adaptive_stops_early_on_tight_cells_and_caps_wide_ones() {
        let _guard = des::pool::test_guard();
        des::pool::configure(4);
        let policy = AdaptivePolicy {
            ci_target: 0.5,
            min_reps: 3,
            max_reps: 12,
        };
        // Cell 0: constant statistic — converges at min_reps with hw 0.
        // Cell 1: alternating ±10 — can never reach hw ≤ 0.5 by rep 12.
        let est = adaptive_sweep(
            &[10, 10],
            policy,
            |cell, rep| {
                if cell == 0 {
                    42.0
                } else if rep % 2 == 0 {
                    10.0
                } else {
                    -10.0
                }
            },
            None,
        );
        assert_eq!(est[0].samples.len(), 3);
        assert!(est[0].converged && est[0].ci_half_width <= 0.5);
        assert!((est[0].mean - 42.0).abs() < 1e-12);
        assert_eq!(est[1].samples.len(), 12, "capped at max_reps");
        assert!(!est[1].converged);
    }

    #[test]
    fn adaptive_is_width_invariant() {
        let _guard = des::pool::test_guard();
        let policy = AdaptivePolicy {
            ci_target: 1.0,
            min_reps: 2,
            max_reps: 20,
        };
        // A deterministic pseudo-noisy statistic: variance shrinks as
        // reps accumulate, so cells converge at different rep counts.
        let sample = |cell: usize, rep: u64| {
            let x = des::stream_seed(cell as u64 + 1, rep) % 1000;
            x as f64 / 100.0
        };
        des::pool::configure(1);
        let seq = adaptive_sweep(&[3, 2, 1], policy, sample, None);
        for w in [2usize, 4, 8] {
            des::pool::configure(w);
            let par = adaptive_sweep(&[3, 2, 1], policy, sample, None);
            for (a, b) in seq.iter().zip(&par) {
                assert_eq!(a.samples, b.samples, "width {w}");
                assert_eq!(a.mean.to_bits(), b.mean.to_bits());
                assert_eq!(a.ci_half_width.to_bits(), b.ci_half_width.to_bits());
                assert_eq!(a.converged, b.converged);
            }
        }
    }

    #[test]
    fn run_cost_scales_with_load_and_window() {
        let small = EmpiricalConfig::signalling_only(120.0, 1);
        let big = EmpiricalConfig::signalling_only(260.0, 1);
        assert!(run_cost(&big) > run_cost(&small));
        let mut long = EmpiricalConfig::signalling_only(120.0, 1);
        long.placement_window_s *= 4.0;
        assert!(run_cost(&long) > run_cost(&small));
    }
}
