//! `capacity-cli` — regenerate the paper's tables and figures from the
//! command line.
//!
//! ```text
//! capacity-cli fig3                 # Erlang-B curves (Fig. 3)
//! capacity-cli table1 [--scale X]   # empirical Table I (slow at scale 1)
//! capacity-cli fig6 [--reps R]      # empirical vs analytic sweep (Fig. 6)
//! capacity-cli fig6 --ci-target 0.5 # adaptive replications per point
//! capacity-cli fig7                 # population dimensioning (Fig. 7)
//! capacity-cli run --erlangs A      # one empirical run, full details
//! ```
//!
//! Append `--json` to any subcommand for machine-readable output.

use capacity::experiment::{EmpiricalConfig, EmpiricalRunner};
use capacity::sweep::{AdaptivePolicy, ProgressMeter};
use capacity::world::pbx_node;
use capacity::{farm, figures, policy, report, table1};
use des::SimDuration;
use faults::{FaultKind, FaultSchedule};
use loadgen::RetryPolicy;
use netsim::topology::nodes;
use pbx_sim::OverloadControl;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let has = |name: &str| args.iter().any(|a| a == name);
    let flag = |name: &str, default: f64| -> f64 {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let seed = flag("--seed", 2015.0) as u64;
    // Sweep subcommands: --threads N caps the process-wide worker budget
    // the sweep executor (and any nested sharded run) draws from; the
    // numbers are identical at any value. --progress prints per-cell
    // lines to stderr, off by default so JSON pipelines stay clean.
    let sweep_threads = flag("--threads", 0.0) as usize;
    if sweep_threads > 0 {
        des::pool::configure(sweep_threads);
    }
    let progress = has("--progress");

    match args.first().map(String::as_str) {
        Some("fig3") => {
            let curves = figures::fig3(260);
            if json {
                println!("{}", report::to_json(&curves));
            } else {
                print!("{}", report::render_fig3(&curves, 10));
            }
        }
        Some("table1") => {
            let scale = flag("--scale", 1.0);
            let rows = if (scale - 1.0).abs() < 1e-9 {
                table1::table1(seed)
            } else {
                table1::table1_scaled(seed, scale)
            };
            if json {
                println!("{}", report::to_json(&rows));
            } else {
                print!("{}", report::render_table1(&rows));
            }
        }
        Some("fig6") => {
            // --smoke shrinks the sweep to a CI-scale grid; --ci-target
            // switches to adaptive replication (reps becomes the minimum,
            // --max-reps the per-point budget).
            let smoke = has("--smoke");
            let loads = if smoke {
                vec![140.0, 200.0, 260.0]
            } else {
                figures::fig6_default_loads()
            };
            let reps = flag("--reps", if smoke { 2.0 } else { 5.0 }) as u64;
            let ci_target = flag("--ci-target", 0.0);
            let points = if ci_target > 0.0 {
                let policy = AdaptivePolicy {
                    ci_target,
                    min_reps: reps.max(2),
                    max_reps: flag("--max-reps", (reps.max(2) * 16) as f64) as u64,
                };
                let meter = ProgressMeter::for_adaptive(
                    loads.len(),
                    loads.len() as u64 * policy.max_reps,
                    progress,
                );
                figures::fig6_adaptive(&loads, policy, seed, Some(&meter))
            } else {
                let meter = ProgressMeter::new(loads.len(), loads.len() as u64 * reps, progress);
                figures::fig6_with(&loads, reps, seed, Some(&meter))
            };
            if json {
                println!("{}", report::to_json(&points));
            } else {
                print!("{}", report::render_fig6(&points));
            }
        }
        Some("fig7") => {
            let pop = flag("--population", 8000.0) as u64;
            let channels = flag("--channels", 165.0) as u32;
            let curves = figures::fig7(pop, channels);
            if json {
                println!("{}", report::to_json(&curves));
            } else {
                print!("{}", report::render_fig7(&curves, 5));
            }
        }
        Some("campaign") => {
            let smoke = args.iter().any(|a| a == "--smoke");
            let mut cc = if smoke {
                capacity::campaign::CampaignConfig::smoke(seed)
            } else {
                capacity::campaign::CampaignConfig::evaluation_default(seed)
            };
            let channels = flag("--channels", 0.0) as u32;
            if channels > 0 {
                cc.channels = channels;
            }
            let window = flag("--window", 0.0);
            if window > 0.0 {
                cc.placement_window_s = window;
            }
            let cells = cc.algorithms(1.0).len() * cc.multipliers.len();
            let meter = ProgressMeter::new(cells, cells as u64, progress);
            let result = capacity::campaign::run_campaign_with(&cc, Some(&meter));
            if json {
                println!("{}", report::to_json(&result));
            } else {
                print!("{}", capacity::campaign::render_campaign(&result));
            }
        }
        Some("policy") => {
            let erlangs = flag("--erlangs", 220.0);
            let users = flag("--users", 60.0) as u32;
            let reps = flag("--reps", 3.0) as u64;
            let limits = [None, Some(4), Some(3), Some(2), Some(1)];
            let meter =
                ProgressMeter::new(limits.len(), limits.len() as u64 * reps.max(1), progress);
            let rows = policy::policy_study_with(erlangs, users, &limits, reps, seed, Some(&meter));
            if json {
                println!("{}", report::to_json(&rows));
            } else {
                print!("{}", policy::render_policy(&rows));
            }
        }
        Some("farm") => {
            let erlangs = flag("--erlangs", 150.0);
            let total = flag("--channels", 164.0) as u32;
            let reps = flag("--reps", 5.0) as u64;
            let layouts = [1, 2, 4];
            let meter =
                ProgressMeter::new(layouts.len(), layouts.len() as u64 * reps.max(1), progress);
            let rows = farm::farm_study_with(erlangs, total, &layouts, reps, seed, Some(&meter));
            if json {
                println!("{}", report::to_json(&rows));
            } else {
                print!("{}", farm::render_farm(erlangs, &rows));
            }
        }
        Some("scale") => {
            // Population-scale cell: finite-source arrivals over N
            // subscribers with registration churn, closed against the
            // log-space Engset analytics.
            let smoke = args.iter().any(|a| a == "--smoke");
            let subs = flag("--subs", if smoke { 20_000.0 } else { 1_000_000.0 }) as u64;
            let erlangs = flag("--erlangs", if smoke { 20.0 } else { 150.0 });
            let mut cfg = EmpiricalConfig::population_scale(subs, erlangs, seed);
            if smoke {
                // Compressed cell: short holds and window, a wheel that
                // visibly turns, a pool sized to show some blocking.
                cfg.holding = loadgen::HoldingDist::Fixed(10.0);
                cfg.placement_window_s = 30.0;
                cfg.channels = 24;
                let pop = cfg.population.as_mut().expect("population cell");
                *pop = loadgen::PopulationConfig::for_offered_load(subs, erlangs, 10.0);
                pop.profile = loadgen::DiurnalProfile::campus_day_compressed(30.0);
                pop.reg_expiry_s = 60.0;
                pop.churn_buckets = 16;
            }
            cfg.channels = flag("--channels", f64::from(cfg.channels)) as u32;
            let result = EmpiricalRunner::run(cfg.clone());
            if json {
                println!("{}", report::to_json(&result));
            } else {
                let engset = teletraffic::engset::engset_blocking_for_load_large(
                    subs,
                    cfg.channels,
                    teletraffic::Erlangs(erlangs),
                )
                .unwrap_or(f64::NAN);
                let pop = cfg.population.as_ref().expect("population cell");
                let wheel_rate = subs as f64 / pop.reg_expiry_s;
                println!("population-scale cell: N = {subs}, peak offered = {erlangs:.1} E");
                println!(
                    "  calls: attempted {}  completed {}  blocked {}  (Pb {:.4})",
                    result.attempted, result.completed, result.blocked, result.observed_pb
                );
                println!(
                    "  steady-state Pb {:.4} | Engset(N={subs}) {:.4} | Erlang-B {:.4}",
                    result.steady_pb, engset, result.analytic_pb
                );
                println!(
                    "  churn: {wheel_rate:.1} re-REGISTER/s steady | SIP messages {}",
                    result.monitor.sip_total
                );
                println!(
                    "  engine: {} events, {:.0} events/s, {:.2} s wall",
                    result.events_processed, result.events_per_sec, result.wall_clock_s
                );
            }
        }
        Some("run") => {
            let erlangs = flag("--erlangs", 40.0);
            let mut cfg = EmpiricalConfig::table1(erlangs, seed);
            cfg.channels = flag("--channels", f64::from(cfg.channels)) as u32;
            let holding = flag("--holding", 0.0);
            if holding > 0.0 {
                cfg.holding = loadgen::HoldingDist::Fixed(holding);
            }
            cfg.placement_window_s = flag("--window", cfg.placement_window_s);
            cfg.servers = flag("--servers", f64::from(cfg.servers)) as u32;

            // Overload control: --shed-high enables PBX shedding.
            let shed_high = flag("--shed-high", 0.0);
            if shed_high > 0.0 {
                cfg.overload = Some(OverloadControl {
                    high_watermark: shed_high,
                    low_watermark: flag("--shed-low", (shed_high - 0.2).max(0.0)),
                    retry_after: SimDuration::from_secs_f64(flag("--retry-after", 2.0)),
                });
            }
            // UAC retry: --retry-max enables 503 retries with backoff.
            let retry_max = flag("--retry-max", 0.0) as u32;
            if retry_max > 0 {
                cfg.retry = Some(RetryPolicy {
                    max_retries: retry_max,
                    base_backoff: SimDuration::from_secs_f64(flag("--retry-base", 2.0)),
                    max_backoff: SimDuration::from_secs_f64(flag("--retry-cap", 32.0)),
                });
            }
            // Scheduled faults (0 = not scheduled).
            let mut sched = FaultSchedule::new();
            let partition_at = flag("--partition-at", 0.0);
            if partition_at > 0.0 {
                sched = sched.at(
                    partition_at,
                    FaultKind::LinkPartition {
                        a: pbx_node(0),
                        b: nodes::SWITCH,
                    },
                );
                let heal_at = flag("--heal-at", partition_at + 15.0);
                sched = sched.at(
                    heal_at,
                    FaultKind::LinkHeal {
                        a: pbx_node(0),
                        b: nodes::SWITCH,
                    },
                );
            }
            let crash_at = flag("--crash-at", 0.0);
            if crash_at > 0.0 {
                sched = sched.at(
                    crash_at,
                    FaultKind::PbxCrash {
                        pbx: 0,
                        restart_after: SimDuration::from_secs_f64(flag("--restart-after", 5.0)),
                    },
                );
            }
            let flash_at = flag("--flash-at", 0.0);
            if flash_at > 0.0 {
                sched = sched.at(
                    flash_at,
                    FaultKind::FlashCrowd {
                        rate_multiplier: flag("--flash-mult", 4.0),
                        duration: SimDuration::from_secs_f64(flag("--flash-dur", 10.0)),
                    },
                );
            }
            let storm = flag("--storm", 0.0) as usize;
            if storm > 0 {
                let pbx_nodes: Vec<_> = (0..cfg.servers).map(pbx_node).collect();
                sched = FaultSchedule::random_storm(
                    seed,
                    cfg.placement_window_s,
                    storm,
                    &pbx_nodes,
                    nodes::SWITCH,
                );
            }
            let robustness = !sched.is_empty() || cfg.overload.is_some() || cfg.retry.is_some();
            cfg.faults = sched;
            // --threads N runs the partitioned sharded engine (N = 0
            // means every available core); absent keeps the classic
            // single-wheel path and its historical digests.
            let threads = flag("--threads", -1.0);
            let result = if threads >= 0.0 {
                let want = threads as u32;
                let want = if want == 0 {
                    u32::try_from(des::pool::total()).unwrap_or(u32::MAX)
                } else {
                    want
                };
                des::pool::configure(want as usize);
                cfg.threads = Some(want);
                capacity::run_partitioned(
                    cfg,
                    capacity::SimOptions::default(),
                    capacity::ExecMode::Sharded { threads: want },
                )
            } else {
                EmpiricalRunner::run(cfg)
            };
            if json || !robustness {
                println!("{}", report::to_json(&result));
            } else {
                print!("{}", report::render_robustness(&result));
                print!("{}", report::render_throughput(&result));
            }
        }
        _ => {
            eprintln!(
                "usage: capacity-cli <fig3|table1|fig6|fig7|policy|farm|campaign|scale|run> [--json] [--seed S]"
            );
            eprintln!("  table1 [--scale X]        scale<1 runs a shortened experiment");
            eprintln!("  fig6   [--reps R]         replications per sweep point");
            eprintln!("         [--smoke]          CI-scale grid (3 loads, 2 reps)");
            eprintln!(
                "         [--ci-target P]    adaptive reps until the 95% CI half-width <= P pp"
            );
            eprintln!("         [--max-reps R]     per-point budget for --ci-target");
            eprintln!(
                "  sweeps (fig6/campaign/policy/farm) also take [--threads N] (worker budget)"
            );
            eprintln!("         and [--progress]   per-cell progress lines on stderr");
            eprintln!("  fig7   [--population P] [--channels N]");
            eprintln!("  policy [--erlangs A] [--users U]   per-user call-limit study");
            eprintln!("  farm   [--erlangs A] [--channels N] [--reps R]  pooled vs split servers");
            eprintln!("  campaign [--smoke] [--channels N --window S]  overload-control law sweep");
            eprintln!(
                "  scale  [--smoke] [--subs N --erlangs A --channels C]  population-scale cell"
            );
            eprintln!("  run    [--erlangs A]      one empirical run, JSON details");
            eprintln!(
                "         [--channels N --holding S --window S]  pool / call / window overrides"
            );
            eprintln!(
                "         [--shed-high W --shed-low W --retry-after S]  PBX overload control"
            );
            eprintln!("         [--retry-max N --retry-base S --retry-cap S]  UAC 503 retry");
            eprintln!("         [--partition-at S --heal-at S]  cut/heal the PBX uplink");
            eprintln!("         [--crash-at S --restart-after S]  crash + supervised restart");
            eprintln!("         [--flash-at S --flash-mult X --flash-dur S]  arrival burst");
            eprintln!("         [--storm N]  seeded random fault storm (overrides the above)");
            eprintln!(
                "         [--servers K --threads N]  partitioned run on N workers (0 = all cores)"
            );
            std::process::exit(2);
        }
    }
}
