//! `capacity-cli` — regenerate the paper's tables and figures from the
//! command line.
//!
//! ```text
//! capacity-cli fig3                 # Erlang-B curves (Fig. 3)
//! capacity-cli table1 [--scale X]   # empirical Table I (slow at scale 1)
//! capacity-cli fig6 [--reps R]      # empirical vs analytic sweep (Fig. 6)
//! capacity-cli fig7                 # population dimensioning (Fig. 7)
//! capacity-cli run --erlangs A      # one empirical run, full details
//! ```
//!
//! Append `--json` to any subcommand for machine-readable output.

use capacity::experiment::{EmpiricalConfig, EmpiricalRunner};
use capacity::{farm, figures, policy, report, table1};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let flag = |name: &str, default: f64| -> f64 {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let seed = flag("--seed", 2015.0) as u64;

    match args.first().map(String::as_str) {
        Some("fig3") => {
            let curves = figures::fig3(260);
            if json {
                println!("{}", report::to_json(&curves));
            } else {
                print!("{}", report::render_fig3(&curves, 10));
            }
        }
        Some("table1") => {
            let scale = flag("--scale", 1.0);
            let rows = if (scale - 1.0).abs() < 1e-9 {
                table1::table1(seed)
            } else {
                table1::table1_scaled(seed, scale)
            };
            if json {
                println!("{}", report::to_json(&rows));
            } else {
                print!("{}", report::render_table1(&rows));
            }
        }
        Some("fig6") => {
            let reps = flag("--reps", 5.0) as u64;
            let points = figures::fig6(&figures::fig6_default_loads(), reps, seed);
            if json {
                println!("{}", report::to_json(&points));
            } else {
                print!("{}", report::render_fig6(&points));
            }
        }
        Some("fig7") => {
            let pop = flag("--population", 8000.0) as u64;
            let channels = flag("--channels", 165.0) as u32;
            let curves = figures::fig7(pop, channels);
            if json {
                println!("{}", report::to_json(&curves));
            } else {
                print!("{}", report::render_fig7(&curves, 5));
            }
        }
        Some("policy") => {
            let erlangs = flag("--erlangs", 220.0);
            let users = flag("--users", 60.0) as u32;
            let limits = [None, Some(4), Some(3), Some(2), Some(1)];
            let rows = policy::policy_study(erlangs, users, &limits, seed);
            if json {
                println!("{}", report::to_json(&rows));
            } else {
                print!("{}", policy::render_policy(&rows));
            }
        }
        Some("farm") => {
            let erlangs = flag("--erlangs", 150.0);
            let total = flag("--channels", 164.0) as u32;
            let reps = flag("--reps", 5.0) as u64;
            let rows = farm::farm_study(erlangs, total, &[1, 2, 4], reps, seed);
            if json {
                println!("{}", report::to_json(&rows));
            } else {
                print!("{}", farm::render_farm(erlangs, &rows));
            }
        }
        Some("run") => {
            let erlangs = flag("--erlangs", 40.0);
            let result = EmpiricalRunner::run(EmpiricalConfig::table1(erlangs, seed));
            println!("{}", report::to_json(&result));
        }
        _ => {
            eprintln!(
                "usage: capacity-cli <fig3|table1|fig6|fig7|policy|farm|run> [--json] [--seed S]"
            );
            eprintln!("  table1 [--scale X]        scale<1 runs a shortened experiment");
            eprintln!("  fig6   [--reps R]         replications per sweep point");
            eprintln!("  fig7   [--population P] [--channels N]");
            eprintln!("  policy [--erlangs A] [--users U]   per-user call-limit study");
            eprintln!("  farm   [--erlangs A] [--channels N] [--reps R]  pooled vs split servers");
            eprintln!("  run    [--erlangs A]      one empirical run, JSON details");
            std::process::exit(2);
        }
    }
}
