//! The §IV call-policy study — an implemented "future work" item.
//!
//! The paper closes by proposing "an effective call policy that would
//! impose limits to the number of calls a user may place" as the way to
//! serve a large population from one server. This module quantifies that
//! proposal: sweep a per-user concurrent-call ceiling under overload and
//! measure how channel blocking, policy refusals and carried traffic
//! trade off.

use crate::experiment::{EmpiricalConfig, EmpiricalRunner};
use crate::sweep::{self, ProgressMeter, SweepTask};
use serde::{Deserialize, Serialize};

/// Result of one policy setting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PolicyRow {
    /// Per-user ceiling (`None` = unlimited).
    pub limit: Option<u32>,
    /// Calls refused by the policy, % of attempts.
    pub policy_refused_pct: f64,
    /// Calls blocked for lack of channels, % of attempts.
    pub channel_blocked_pct: f64,
    /// Calls completed, % of attempts.
    pub completed_pct: f64,
    /// Carried traffic in Erlangs.
    pub carried_erlangs: f64,
    /// Peak channels used.
    pub peak_channels: u32,
}

/// Sweep per-user ceilings at offered load `erlangs` with `user_pool`
/// distinct callers (so the mean per-user demand is `erlangs/user_pool`
/// concurrent calls). Each ceiling is measured over `reps` independent
/// replications (decorrelated via [`des::stream_seed`]) and the
/// percentages averaged, so adjacent rows differ by policy effect rather
/// than a single seed's arrival luck.
#[must_use]
pub fn policy_study(
    erlangs: f64,
    user_pool: u32,
    limits: &[Option<u32>],
    reps: u64,
    seed: u64,
) -> Vec<PolicyRow> {
    policy_study_with(erlangs, user_pool, limits, reps, seed, None)
}

/// The configuration one policy replication runs.
fn policy_cfg(erlangs: f64, user_pool: u32, limit: Option<u32>, seed: u64) -> EmpiricalConfig {
    let mut cfg = EmpiricalConfig::signalling_only(erlangs, seed);
    cfg.user_pool = user_pool;
    cfg.max_calls_per_user = limit;
    cfg.placement_window_s = 600.0;
    cfg
}

/// [`policy_study`] with optional progress reporting (the CLI's
/// `--progress`); the `(ceiling, rep)` grid fans out through the
/// budgeted work-stealing executor ([`crate::sweep`]).
#[must_use]
pub fn policy_study_with(
    erlangs: f64,
    user_pool: u32,
    limits: &[Option<u32>],
    reps: u64,
    seed: u64,
    progress: Option<&ProgressMeter>,
) -> Vec<PolicyRow> {
    let reps = reps.max(1);
    // Cell-major task order: runs for ceiling `c` are the contiguous
    // slice [c·reps, (c+1)·reps), already in replication order.
    let tasks: Vec<SweepTask> = limits
        .iter()
        .enumerate()
        .flat_map(|(cell, &limit)| {
            let cost = sweep::run_cost(&policy_cfg(erlangs, user_pool, limit, 0));
            (0..reps).map(move |rep| SweepTask { cell, rep, cost })
        })
        .collect();
    let all_runs = sweep::run_sweep_with(
        &tasks,
        |t| {
            EmpiricalRunner::run(policy_cfg(
                erlangs,
                user_pool,
                limits[t.cell],
                des::stream_seed(seed, t.rep),
            ))
        },
        progress,
    );
    limits
        .iter()
        .enumerate()
        .map(|(cell, &limit)| {
            let runs = &all_runs[cell * reps as usize..(cell + 1) * reps as usize];
            let n = runs.len() as f64;
            let mean = |f: &dyn Fn(&crate::experiment::RunResult) -> f64| -> f64 {
                runs.iter().map(f).sum::<f64>() / n
            };
            let pct = |x: u64, attempted: u64| x as f64 / attempted.max(1) as f64 * 100.0;
            PolicyRow {
                limit,
                // 403s surface as Failed at the UAC.
                policy_refused_pct: mean(&|r| pct(r.failed, r.attempted)),
                channel_blocked_pct: mean(&|r| pct(r.blocked, r.attempted)),
                completed_pct: mean(&|r| pct(r.completed, r.attempted)),
                carried_erlangs: mean(&|r| r.carried_erlangs),
                peak_channels: runs.iter().map(|r| r.peak_channels).max().unwrap_or(0),
            }
        })
        .collect()
}

/// Render the study as a text table.
#[must_use]
pub fn render_policy(rows: &[PolicyRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Call-policy study: per-user ceilings under overload (paper §IV proposal)"
    );
    let _ = writeln!(
        out,
        "{:>10} {:>14} {:>16} {:>12} {:>10} {:>8}",
        "limit", "policy-refused", "channel-blocked", "completed", "carried", "peak-N"
    );
    for r in rows {
        let limit = r.limit.map_or("none".to_owned(), |l| l.to_string());
        let _ = writeln!(
            out,
            "{:>10} {:>13.1}% {:>15.1}% {:>11.1}% {:>9.1}E {:>8}",
            limit,
            r.policy_refused_pct,
            r.channel_blocked_pct,
            r.completed_pct,
            r.carried_erlangs,
            r.peak_channels
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tight_policy_replaces_channel_blocking() {
        // 30 users offered 40 E onto a 20-channel pool (2x overload, heavy
        // per-user demand of ~1.3 concurrent calls each). Kept small so the
        // debug-mode test stays fast.
        let rows = policy_study_small();
        let unlimited = &rows[0];
        let limit1 = &rows[1];
        // Unlimited: blocking comes from the channel pool.
        assert!(unlimited.channel_blocked_pct > 10.0, "{unlimited:?}");
        assert!(unlimited.policy_refused_pct < 1.0);
        // Limit 1: the policy pre-empts most channel blocking.
        assert!(limit1.policy_refused_pct > 10.0, "{limit1:?}");
        assert!(
            limit1.channel_blocked_pct < unlimited.channel_blocked_pct,
            "policy relieves the pool: {limit1:?} vs {unlimited:?}"
        );
        // The pool is never overfilled either way.
        assert!(unlimited.peak_channels <= 20);
        assert!(limit1.peak_channels <= 20);
    }

    fn policy_study_small() -> Vec<PolicyRow> {
        let limits = [None, Some(1)];
        limits
            .iter()
            .map(|&limit| {
                let mut cfg = crate::experiment::EmpiricalConfig::signalling_only(40.0, 3);
                cfg.channels = 20;
                cfg.user_pool = 30;
                cfg.max_calls_per_user = limit;
                cfg.holding = loadgen::HoldingDist::Exponential(30.0);
                cfg.placement_window_s = 300.0;
                let r = crate::experiment::EmpiricalRunner::run(cfg);
                let pct = |x: u64| x as f64 / r.attempted.max(1) as f64 * 100.0;
                PolicyRow {
                    limit,
                    policy_refused_pct: pct(r.failed),
                    channel_blocked_pct: pct(r.blocked),
                    completed_pct: pct(r.completed),
                    carried_erlangs: r.carried_erlangs,
                    peak_channels: r.peak_channels,
                }
            })
            .collect()
    }

    #[test]
    fn render_contains_all_rows() {
        let rows = vec![
            PolicyRow {
                limit: None,
                policy_refused_pct: 0.0,
                channel_blocked_pct: 19.0,
                completed_pct: 81.0,
                carried_erlangs: 160.0,
                peak_channels: 165,
            },
            PolicyRow {
                limit: Some(2),
                policy_refused_pct: 12.0,
                channel_blocked_pct: 5.0,
                completed_pct: 83.0,
                carried_erlangs: 150.0,
                peak_channels: 165,
            },
        ];
        let text = render_policy(&rows);
        assert!(text.contains("none"));
        assert!(text.contains("2"));
        assert!(text.contains("19.0%"));
        assert!(text.lines().count() >= 4);
    }
}
