//! Pluggable SIP overload-control laws.
//!
//! Beyond the Erlang-B knee the interesting question is not how many calls
//! fit but how gracefully the server sheds the rest. This crate extracts the
//! B2BUA's admission decision behind an [`OverloadControl`] trait and ships
//! the algorithm families compared by Hong et al. (*A Comparative Study of
//! SIP Overload Control Algorithms*) plus the MOS-predictive 3D-CAC idea of
//! Narikiyo et al.:
//!
//! * [`Hysteresis503`] — the local two-watermark shed from PR 1, kept
//!   digest-compatible as the default law (no feedback headers, byte-exact
//!   `503 + Retry-After` behaviour);
//! * [`RateBased`] — the server advertises a maximum upstream call rate in
//!   response feedback; the upstream UAC paces INVITEs to that rate;
//! * [`WindowBased`] — the server advertises a call window (max concurrent
//!   calls the upstream may hold open); the UAC queues beyond it;
//! * [`SignalBased`] — a local queue-delay estimator: sheds when the
//!   estimated signalling delay crosses a threshold, with hysteresis;
//! * [`MosCac`] — 3D-CAC admission: predicts the MOS a new call would see
//!   from the currently observed link loss/jitter/delay (via the `voiceq`
//!   E-model) and rejects calls that would land below the floor, even when
//!   free channels remain.
//!
//! The feedback wire format is one ad-hoc header, `X-Overload-Control`,
//! valued `rate=<calls-per-sec>` or `win=<max-open-calls>`; see
//! [`Feedback`]. Servers attach it to `100 Trying` (closing the loop once
//! per admitted call) and to `503` rejects. Laws that emit no feedback
//! leave every message byte-identical to the pre-trait code path, which is
//! what keeps [`Hysteresis503`] digest-compatible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use des::SimDuration;
use voiceq::{estimate_mos, CodecProfile, EModelInputs};

/// Load observations offered to a control law on each admission decision.
///
/// Everything here is already maintained by the B2BUA or the monitor; the
/// law only reads. All signals are instantaneous (sampled at the INVITE).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadSignals {
    /// Channel-pool occupancy in `[0, 1]` (0.0 when the pool is unsized).
    pub occupancy: f64,
    /// CPU utilisation over the last accounting window, `[0, 1]`.
    pub cpu: f64,
    /// Channels still free in the pool.
    pub free_channels: u32,
    /// Observed media packet-loss fraction on the access link, `[0, 1]`.
    /// Zero until the first quality observation arrives.
    pub link_loss: f64,
    /// Observed media interarrival jitter on the access link, ms.
    pub link_jitter_ms: f64,
    /// Observed mean one-way media delay on the access link, ms.
    pub link_delay_ms: f64,
}

impl LoadSignals {
    /// The scalar load signal the legacy hysteresis shed used: the worse of
    /// channel occupancy and CPU utilisation.
    #[must_use]
    pub fn load(&self) -> f64 {
        self.occupancy.max(self.cpu)
    }
}

/// Feedback a server advertises to its upstream in response headers.
///
/// Wire format (the `X-Overload-Control` header value):
/// `rate=<f64 calls/sec>` or `win=<u32 max open calls>`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Feedback {
    /// Maximum sustained call rate the upstream should offer, calls/sec.
    Rate(f64),
    /// Maximum number of calls the upstream may hold open at once.
    Window(u32),
}

impl Feedback {
    /// Encode as an `X-Overload-Control` header value.
    #[must_use]
    pub fn to_header_value(&self) -> String {
        match self {
            Feedback::Rate(r) => format!("rate={r:.3}"),
            Feedback::Window(w) => format!("win={w}"),
        }
    }

    /// Parse an `X-Overload-Control` header value. Tolerant of surrounding
    /// whitespace; returns `None` on anything malformed (the upstream then
    /// keeps its current pacing state).
    #[must_use]
    pub fn parse(value: &str) -> Option<Feedback> {
        let v = value.trim();
        if let Some(r) = v.strip_prefix("rate=") {
            let r: f64 = r.trim().parse().ok()?;
            if r.is_finite() && r > 0.0 {
                return Some(Feedback::Rate(r));
            }
            return None;
        }
        if let Some(w) = v.strip_prefix("win=") {
            return w.trim().parse::<u32>().ok().map(Feedback::Window);
        }
        None
    }
}

/// The outcome of one admission decision.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// Admit the call (`true`) or reject it with `503` (`false`).
    pub admit: bool,
    /// `Retry-After` to carry on the `503` when rejecting.
    pub retry_after: Option<SimDuration>,
    /// Feedback to advertise upstream: attached to the `100 Trying` when
    /// admitting, to the `503` when rejecting.
    pub feedback: Option<Feedback>,
}

impl Decision {
    /// Plain admission, no feedback.
    #[must_use]
    pub fn admit() -> Decision {
        Decision {
            admit: true,
            retry_after: None,
            feedback: None,
        }
    }

    /// Rejection with a `Retry-After`, no feedback.
    #[must_use]
    pub fn reject(retry_after: SimDuration) -> Decision {
        Decision {
            admit: false,
            retry_after: Some(retry_after),
            feedback: None,
        }
    }

    /// Attach feedback to an existing decision.
    #[must_use]
    pub fn with_feedback(mut self, fb: Feedback) -> Decision {
        self.feedback = Some(fb);
        self
    }
}

/// An overload-control law: observes load signals on each new INVITE and
/// decides admit/reject, optionally advertising feedback upstream.
///
/// Laws are stateful (hysteresis flags, EWMA estimators) and deterministic:
/// the same observation sequence always yields the same decisions, which is
/// what lets the experiment layer pin run digests per law.
pub trait OverloadControl: core::fmt::Debug + Send {
    /// Stable algorithm name, used in campaign artifacts.
    fn name(&self) -> &'static str;

    /// Decide admission for one new INVITE under the given signals.
    fn on_invite(&mut self, signals: &LoadSignals) -> Decision;

    /// True while the law is actively shedding (for stats/reporting).
    fn is_shedding(&self) -> bool {
        false
    }

    /// Reset transient state after a server crash (mirrors the legacy
    /// behaviour of clearing the shedding flag on `Pbx::crash`).
    fn on_crash(&mut self) {}
}

/// Plain-data law selector: `Copy` configuration the experiment layer can
/// store in `PbxConfig` and sweep over; [`ControlLaw::build`] instantiates
/// the stateful law.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ControlLaw {
    /// Two-watermark local shed (the PR 1 default, digest-compatible).
    Hysteresis {
        /// Engage shedding at or above this load.
        high_watermark: f64,
        /// Release shedding at or below this load.
        low_watermark: f64,
        /// `Retry-After` advertised on `503`.
        retry_after: SimDuration,
    },
    /// Rate feedback: advertise a max upstream call rate scaled down as
    /// load exceeds `target_load`; shed outright only on pool exhaustion.
    RateBased {
        /// Load at which the advertised rate starts backing off.
        target_load: f64,
        /// Rate advertised when unloaded, calls/sec.
        max_rate_cps: f64,
        /// Floor for the advertised rate, calls/sec.
        min_rate_cps: f64,
        /// `Retry-After` advertised on `503`.
        retry_after: SimDuration,
    },
    /// Window feedback: advertise a max number of open upstream calls,
    /// scaled down as load exceeds `target_load`.
    WindowBased {
        /// Load at which the advertised window starts shrinking.
        target_load: f64,
        /// Window advertised when unloaded.
        max_window: u32,
        /// Floor for the advertised window.
        min_window: u32,
        /// `Retry-After` advertised on `503`.
        retry_after: SimDuration,
    },
    /// Local queue-delay estimator with hysteresis.
    SignalBased {
        /// Estimated signalling delay (ms) at which shedding engages.
        target_delay_ms: f64,
        /// Nominal per-message service time (ms) feeding the estimator.
        service_ms: f64,
        /// EWMA smoothing factor in `(0, 1]`.
        ewma_alpha: f64,
        /// `Retry-After` advertised on `503`.
        retry_after: SimDuration,
    },
    /// MOS-predictive CAC: admit only when the E-model predicts at least
    /// `min_mos` under current link loss/jitter/delay (and a channel is
    /// free).
    MosCac {
        /// Minimum acceptable predicted MOS.
        min_mos: f64,
        /// `Retry-After` advertised on `503`.
        retry_after: SimDuration,
    },
}

impl ControlLaw {
    /// Stable algorithm name (same string the built law reports).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            ControlLaw::Hysteresis { .. } => "hysteresis503",
            ControlLaw::RateBased { .. } => "rate_based",
            ControlLaw::WindowBased { .. } => "window_based",
            ControlLaw::SignalBased { .. } => "signal_based",
            ControlLaw::MosCac { .. } => "mos_cac",
        }
    }

    /// The PR 1 default watermarks: engage at 0.90, release at 0.70,
    /// advertise `Retry-After: 2`.
    #[must_use]
    pub fn hysteresis_default() -> ControlLaw {
        ControlLaw::Hysteresis {
            high_watermark: 0.90,
            low_watermark: 0.70,
            retry_after: SimDuration::from_secs(2),
        }
    }

    /// Rate-based law sized for a server engineered to `capacity_cps`
    /// calls/sec: advertises up to 110% of capacity, backs off from 85%
    /// load, floors at 10% of capacity.
    #[must_use]
    pub fn rate_based_for(capacity_cps: f64) -> ControlLaw {
        ControlLaw::RateBased {
            target_load: 0.85,
            max_rate_cps: capacity_cps * 1.1,
            min_rate_cps: (capacity_cps * 0.1).max(0.1),
            retry_after: SimDuration::from_secs(2),
        }
    }

    /// Window-based law sized for a channel pool of `channels`: advertises
    /// up to the full pool, shrinks from 85% load, floors at one call.
    #[must_use]
    pub fn window_based_for(channels: u32) -> ControlLaw {
        ControlLaw::WindowBased {
            target_load: 0.85,
            max_window: channels.max(1),
            min_window: 1,
            retry_after: SimDuration::from_secs(2),
        }
    }

    /// Signal-based law with a 150 ms delay budget over a 2 ms nominal
    /// service time, lightly smoothed. (With utilisation clamped at 0.99
    /// the M/M/1 estimate tops out at 198 ms, so the budget must sit below
    /// that for the law to be able to engage.)
    #[must_use]
    pub fn signal_based_default() -> ControlLaw {
        ControlLaw::SignalBased {
            target_delay_ms: 150.0,
            service_ms: 2.0,
            ewma_alpha: 0.3,
            retry_after: SimDuration::from_secs(2),
        }
    }

    /// MOS CAC with the conventional "acceptable" floor of 3.5.
    #[must_use]
    pub fn mos_cac_default() -> ControlLaw {
        ControlLaw::MosCac {
            min_mos: 3.5,
            retry_after: SimDuration::from_secs(2),
        }
    }

    /// Instantiate the stateful law.
    #[must_use]
    pub fn build(self) -> Box<dyn OverloadControl> {
        match self {
            ControlLaw::Hysteresis {
                high_watermark,
                low_watermark,
                retry_after,
            } => Box::new(Hysteresis503::new(
                high_watermark,
                low_watermark,
                retry_after,
            )),
            ControlLaw::RateBased {
                target_load,
                max_rate_cps,
                min_rate_cps,
                retry_after,
            } => Box::new(RateBased {
                target_load,
                max_rate_cps,
                min_rate_cps,
                retry_after,
            }),
            ControlLaw::WindowBased {
                target_load,
                max_window,
                min_window,
                retry_after,
            } => Box::new(WindowBased {
                target_load,
                max_window,
                min_window,
                retry_after,
            }),
            ControlLaw::SignalBased {
                target_delay_ms,
                service_ms,
                ewma_alpha,
                retry_after,
            } => Box::new(SignalBased {
                target_delay_ms,
                service_ms,
                ewma_alpha,
                retry_after,
                delay_est_ms: 0.0,
                shedding: false,
            }),
            ControlLaw::MosCac {
                min_mos,
                retry_after,
            } => Box::new(MosCac {
                min_mos,
                retry_after,
                shedding: false,
            }),
        }
    }
}

/// The PR 1 two-watermark shed, verbatim: engage at `load >=
/// high_watermark`, release only at `load <= low_watermark`, reject with
/// `503 + Retry-After` while engaged. Emits no feedback, so its wire
/// behaviour is byte-identical to the pre-trait inline code.
#[derive(Debug, Clone)]
pub struct Hysteresis503 {
    high_watermark: f64,
    low_watermark: f64,
    retry_after: SimDuration,
    shedding: bool,
}

impl Hysteresis503 {
    /// A fresh (non-shedding) hysteresis law.
    #[must_use]
    pub fn new(high_watermark: f64, low_watermark: f64, retry_after: SimDuration) -> Hysteresis503 {
        Hysteresis503 {
            high_watermark,
            low_watermark,
            retry_after,
            shedding: false,
        }
    }
}

impl OverloadControl for Hysteresis503 {
    fn name(&self) -> &'static str {
        "hysteresis503"
    }

    fn on_invite(&mut self, signals: &LoadSignals) -> Decision {
        let load = signals.load();
        // Exactly the legacy ordering: release is evaluated first while
        // shedding (so a sample at the low watermark exits), engagement
        // only when not shedding. A plateau between the watermarks changes
        // nothing — no flapping.
        if self.shedding {
            if load <= self.low_watermark {
                self.shedding = false;
            }
        } else if load >= self.high_watermark {
            self.shedding = true;
        }
        if self.shedding {
            Decision::reject(self.retry_after)
        } else {
            Decision::admit()
        }
    }

    fn is_shedding(&self) -> bool {
        self.shedding
    }

    fn on_crash(&mut self) {
        self.shedding = false;
    }
}

/// Scale factor for feedback laws: 1.0 up to `target`, then linear down to
/// 0.0 as load approaches 1.0.
fn feedback_scale(load: f64, target: f64) -> f64 {
    if load <= target {
        return 1.0;
    }
    let span = (1.0 - target).max(1e-9);
    ((1.0 - load) / span).clamp(0.0, 1.0)
}

/// Rate-feedback law (Hong et al. "rate-based" family): every response
/// advertises the call rate the upstream should not exceed; the server
/// itself only rejects when the channel pool is exhausted (converting the
/// 486 the pool would produce into a 503 the upstream backs off from).
#[derive(Debug, Clone)]
pub struct RateBased {
    target_load: f64,
    max_rate_cps: f64,
    min_rate_cps: f64,
    retry_after: SimDuration,
}

impl OverloadControl for RateBased {
    fn name(&self) -> &'static str {
        "rate_based"
    }

    fn on_invite(&mut self, signals: &LoadSignals) -> Decision {
        let scale = feedback_scale(signals.load(), self.target_load);
        let rate = (self.max_rate_cps * scale).max(self.min_rate_cps);
        let fb = Feedback::Rate(rate);
        if signals.free_channels == 0 {
            Decision::reject(self.retry_after).with_feedback(fb)
        } else {
            Decision::admit().with_feedback(fb)
        }
    }
}

/// Window-feedback law (Hong et al. "window-based" family): every response
/// advertises the number of calls the upstream may hold open; rejection
/// only on pool exhaustion, as for [`RateBased`].
#[derive(Debug, Clone)]
pub struct WindowBased {
    target_load: f64,
    max_window: u32,
    min_window: u32,
    retry_after: SimDuration,
}

impl OverloadControl for WindowBased {
    fn name(&self) -> &'static str {
        "window_based"
    }

    fn on_invite(&mut self, signals: &LoadSignals) -> Decision {
        let scale = feedback_scale(signals.load(), self.target_load);
        let win = ((f64::from(self.max_window) * scale).floor() as u32)
            .clamp(self.min_window, self.max_window);
        let fb = Feedback::Window(win);
        if signals.free_channels == 0 {
            Decision::reject(self.retry_after).with_feedback(fb)
        } else {
            Decision::admit().with_feedback(fb)
        }
    }
}

/// Local signal-based law: estimates queueing delay from utilisation with
/// an M/M/1-shaped law `d = service · u/(1−u)`, EWMA-smoothed across
/// INVITEs, and sheds with hysteresis (release at half the target).
#[derive(Debug, Clone)]
pub struct SignalBased {
    target_delay_ms: f64,
    service_ms: f64,
    ewma_alpha: f64,
    retry_after: SimDuration,
    delay_est_ms: f64,
    shedding: bool,
}

impl SignalBased {
    /// Current smoothed delay estimate, ms.
    #[must_use]
    pub fn delay_estimate_ms(&self) -> f64 {
        self.delay_est_ms
    }
}

impl OverloadControl for SignalBased {
    fn name(&self) -> &'static str {
        "signal_based"
    }

    fn on_invite(&mut self, signals: &LoadSignals) -> Decision {
        let u = signals.load().clamp(0.0, 0.99);
        let instant = self.service_ms * u / (1.0 - u);
        self.delay_est_ms = self.ewma_alpha * instant + (1.0 - self.ewma_alpha) * self.delay_est_ms;
        if self.shedding {
            if self.delay_est_ms <= 0.5 * self.target_delay_ms {
                self.shedding = false;
            }
        } else if self.delay_est_ms >= self.target_delay_ms {
            self.shedding = true;
        }
        if self.shedding {
            Decision::reject(self.retry_after)
        } else {
            Decision::admit()
        }
    }

    fn is_shedding(&self) -> bool {
        self.shedding
    }

    fn on_crash(&mut self) {
        self.delay_est_ms = 0.0;
        self.shedding = false;
    }
}

/// MOS-predictive CAC (Narikiyo et al. 3D-CAC): predicts the MOS a new
/// call would experience from currently observed link loss/jitter/delay
/// and rejects admissions that would land below `min_mos`, in addition to
/// the plain free-channel check. Uses the same E-model configuration as
/// the `vmon` per-call scorer (G.711 + PLC, jitter buffer sized at
/// `max(2·jitter, 40 ms)`).
#[derive(Debug, Clone)]
pub struct MosCac {
    min_mos: f64,
    retry_after: SimDuration,
    shedding: bool,
}

impl MosCac {
    /// Predicted MOS under the given link signals.
    #[must_use]
    pub fn predict_mos(signals: &LoadSignals) -> f64 {
        estimate_mos(&EModelInputs {
            network_delay_ms: signals.link_delay_ms,
            jitter_buffer_ms: (2.0 * signals.link_jitter_ms).max(40.0),
            packet_loss: signals.link_loss,
            burst_ratio: 1.0,
            codec: CodecProfile::g711(),
            advantage: 0.0,
        })
    }
}

impl OverloadControl for MosCac {
    fn name(&self) -> &'static str {
        "mos_cac"
    }

    fn on_invite(&mut self, signals: &LoadSignals) -> Decision {
        let predicted = MosCac::predict_mos(signals);
        self.shedding = signals.free_channels == 0 || predicted < self.min_mos;
        if self.shedding {
            Decision::reject(self.retry_after)
        } else {
            Decision::admit()
        }
    }

    fn is_shedding(&self) -> bool {
        self.shedding
    }

    fn on_crash(&mut self) {
        self.shedding = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signals(occupancy: f64, cpu: f64, free: u32) -> LoadSignals {
        LoadSignals {
            occupancy,
            cpu,
            free_channels: free,
            link_loss: 0.0,
            link_jitter_ms: 0.0,
            link_delay_ms: 0.0,
        }
    }

    /// Satellite: hysteresis enter/exit ordering. Engages strictly above
    /// the band's interior only at `>= high`, releases only at `<= low`,
    /// and a plateau between the watermarks never flaps.
    #[test]
    fn hysteresis_engages_high_releases_low_no_plateau_flapping() {
        let mut law = Hysteresis503::new(0.75, 0.30, SimDuration::from_secs(3));

        // Below high watermark: admits, not shedding.
        assert!(law.on_invite(&signals(0.5, 0.0, 2)).admit);
        assert!(!law.is_shedding());
        // Just under high: still admits.
        assert!(law.on_invite(&signals(0.7499, 0.0, 1)).admit);
        // At the high watermark: engages and rejects this INVITE.
        let d = law.on_invite(&signals(0.75, 0.0, 1));
        assert!(!d.admit);
        assert!(law.is_shedding());
        assert_eq!(d.retry_after, Some(SimDuration::from_secs(3)));
        assert_eq!(d.feedback, None, "hysteresis advertises nothing");

        // Plateau in the dead band (low < load < high): keeps shedding on
        // every sample — no flapping.
        for _ in 0..5 {
            assert!(!law.on_invite(&signals(0.5, 0.0, 3)).admit);
            assert!(law.is_shedding());
        }
        // Still above low: shedding persists even as load falls.
        assert!(!law.on_invite(&signals(0.3001, 0.0, 4)).admit);
        // At the low watermark: releases (inclusive, like the legacy code)
        // and this INVITE is admitted.
        assert!(law.on_invite(&signals(0.30, 0.0, 4)).admit);
        assert!(!law.is_shedding());
        // Back in the dead band from below: stays admitted — no flapping.
        for _ in 0..5 {
            assert!(law.on_invite(&signals(0.6, 0.0, 3)).admit);
            assert!(!law.is_shedding());
        }
        // CPU alone can engage it (load = max(occupancy, cpu)).
        assert!(!law.on_invite(&signals(0.1, 0.9, 5)).admit);
        law.on_crash();
        assert!(!law.is_shedding(), "crash resets the shed flag");
    }

    #[test]
    fn feedback_wire_format_round_trips_and_rejects_garbage() {
        let r = Feedback::Rate(12.5);
        assert_eq!(r.to_header_value(), "rate=12.500");
        assert_eq!(Feedback::parse("rate=12.500"), Some(Feedback::Rate(12.5)));
        let w = Feedback::Window(8);
        assert_eq!(w.to_header_value(), "win=8");
        assert_eq!(Feedback::parse(" win=8 "), Some(Feedback::Window(8)));
        for bad in [
            "", "rate=", "rate=abc", "rate=-3", "rate=inf", "win=", "win=-1", "cap=9",
        ] {
            assert_eq!(Feedback::parse(bad), None, "{bad:?} must not parse");
        }
    }

    #[test]
    fn rate_law_backs_off_past_target_and_sheds_only_when_exhausted() {
        let mut law = ControlLaw::rate_based_for(10.0).build();
        // Unloaded: full advertised rate, admitted.
        let d = law.on_invite(&signals(0.2, 0.0, 8));
        assert!(d.admit);
        let Some(Feedback::Rate(r_full)) = d.feedback else {
            panic!("rate law must advertise a rate");
        };
        assert!((r_full - 11.0).abs() < 1e-9);
        // Past target: advertised rate drops but the call is still admitted
        // while channels remain.
        let d = law.on_invite(&signals(0.95, 0.0, 1));
        assert!(d.admit);
        let Some(Feedback::Rate(r_hot)) = d.feedback else {
            panic!("rate law must advertise a rate");
        };
        assert!(r_hot < r_full);
        // Pool exhausted: 503 with feedback still attached.
        let d = law.on_invite(&signals(1.0, 0.0, 0));
        assert!(!d.admit);
        assert!(d.retry_after.is_some());
        assert!(matches!(d.feedback, Some(Feedback::Rate(_))));
    }

    #[test]
    fn window_law_shrinks_window_past_target() {
        let mut law = ControlLaw::window_based_for(10).build();
        let d = law.on_invite(&signals(0.5, 0.0, 5));
        assert!(d.admit);
        assert_eq!(d.feedback, Some(Feedback::Window(10)));
        let d = law.on_invite(&signals(0.925, 0.0, 1));
        let Some(Feedback::Window(hot)) = d.feedback else {
            panic!("window law must advertise a window");
        };
        assert!(hot < 10 && hot >= 1, "window shrinks past target: {hot}");
        let d = law.on_invite(&signals(1.0, 0.0, 0));
        assert!(!d.admit);
        assert_eq!(d.feedback, Some(Feedback::Window(1)));
    }

    #[test]
    fn signal_law_sheds_on_sustained_delay_and_recovers() {
        let mut law = ControlLaw::signal_based_default().build();
        // Sustained saturation drives the EWMA estimate toward
        // 2 ms · 0.99/0.01 = 198 ms, crossing the 150 ms budget.
        let mut tripped = false;
        for _ in 0..50 {
            if !law.on_invite(&signals(0.999, 0.999, 1)).admit {
                tripped = true;
                break;
            }
        }
        assert!(tripped, "signal law must shed under sustained saturation");
        assert!(law.is_shedding());
        // A brief dip does not release: the estimate must fall below half
        // the budget, not just below it (hysteresis).
        assert!(!law.on_invite(&signals(0.5, 0.5, 4)).admit);
        // Sustained idle drains the estimator and the law recovers.
        let mut recovered = false;
        for _ in 0..50 {
            if law.on_invite(&signals(0.0, 0.0, 8)).admit {
                recovered = true;
                break;
            }
        }
        assert!(recovered, "signal law must release once the queue drains");
        assert!(!law.is_shedding());
    }

    #[test]
    fn mos_cac_rejects_on_predicted_quality_not_just_channels() {
        let mut law = ControlLaw::mos_cac_default().build();
        // Clean link, free channels: admit.
        assert!(law.on_invite(&signals(0.5, 0.0, 5)).admit);
        // Clean link but exhausted pool: reject.
        assert!(!law.on_invite(&signals(1.0, 0.0, 0)).admit);
        // Channels free but the link is lossy enough that a new call would
        // score below 3.5: reject — the 3D part of 3D-CAC.
        let lossy = LoadSignals {
            occupancy: 0.2,
            cpu: 0.1,
            free_channels: 5,
            link_loss: 0.15,
            link_jitter_ms: 60.0,
            link_delay_ms: 150.0,
        };
        assert!(MosCac::predict_mos(&lossy) < 3.5);
        assert!(!law.on_invite(&lossy).admit);
        assert!(law.is_shedding());
        law.on_crash();
        assert!(!law.is_shedding());
    }

    #[test]
    fn control_law_names_are_stable_and_built_laws_agree() {
        let laws = [
            ControlLaw::hysteresis_default(),
            ControlLaw::rate_based_for(5.0),
            ControlLaw::window_based_for(8),
            ControlLaw::signal_based_default(),
            ControlLaw::mos_cac_default(),
        ];
        let names: Vec<&str> = laws.iter().map(ControlLaw::name).collect();
        assert_eq!(
            names,
            [
                "hysteresis503",
                "rate_based",
                "window_based",
                "signal_based",
                "mos_cac"
            ]
        );
        for law in laws {
            assert_eq!(law.build().name(), law.name());
        }
    }
}
