//! SIP URIs (`sip:user@host:port;param=value`).

use serde::{Deserialize, Serialize};

/// A SIP URI — the subset used for addressing users and servers in the
/// evaluation: scheme `sip`, optional user part, host, optional port, and
/// `;`-separated parameters (e.g. `;transport=udp`, `;tag=...` when embedded
/// in From/To headers is handled at the header level).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SipUri {
    /// User part (the extension / account), empty for server URIs.
    pub user: String,
    /// Host (name or IPv4 literal).
    pub host: String,
    /// Explicit port if present.
    pub port: Option<u16>,
    /// URI parameters in order of appearance, as (name, optional value).
    pub params: Vec<(String, Option<String>)>,
}

impl SipUri {
    /// `sip:user@host`.
    #[must_use]
    pub fn new(user: &str, host: &str) -> Self {
        SipUri {
            user: user.to_owned(),
            host: host.to_owned(),
            port: None,
            params: Vec::new(),
        }
    }

    /// A server URI without a user part: `sip:host`.
    #[must_use]
    pub fn server(host: &str) -> Self {
        SipUri::new("", host)
    }

    /// Builder: set the port.
    #[must_use]
    pub fn with_port(mut self, port: u16) -> Self {
        self.port = Some(port);
        self
    }

    /// Builder: append a parameter.
    #[must_use]
    pub fn with_param(mut self, name: &str, value: Option<&str>) -> Self {
        self.params
            .push((name.to_owned(), value.map(str::to_owned)));
        self
    }

    /// Look up a parameter value (None if absent or valueless).
    #[must_use]
    pub fn param(&self, name: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    /// Parse `sip:user@host:port;params`. Returns `None` on malformed input.
    #[must_use]
    pub fn parse(s: &str) -> Option<SipUri> {
        let rest = s.strip_prefix("sip:")?;
        if rest.is_empty() {
            return None;
        }
        // Split off parameters first.
        let mut parts = rest.split(';');
        let core = parts.next()?;
        let mut params = Vec::new();
        for p in parts {
            if p.is_empty() {
                return None;
            }
            match p.split_once('=') {
                Some((n, v)) => {
                    if n.is_empty() {
                        return None;
                    }
                    params.push((n.to_owned(), Some(v.to_owned())));
                }
                None => params.push((p.to_owned(), None)),
            }
        }
        // user@host:port | host:port | user@host | host
        let (user, hostport) = match core.split_once('@') {
            Some((u, hp)) => {
                if u.is_empty() {
                    return None;
                }
                (u.to_owned(), hp)
            }
            None => (String::new(), core),
        };
        let (host, port) = match hostport.rsplit_once(':') {
            Some((h, p)) => (h, Some(p.parse::<u16>().ok()?)),
            None => (hostport, None),
        };
        if host.is_empty() || host.contains('@') || host.contains(' ') {
            return None;
        }
        Some(SipUri {
            user,
            host: host.to_owned(),
            port,
            params,
        })
    }

    /// Exact length of this URI's `Display` rendering, computed without
    /// formatting — one term of the analytic
    /// [`crate::message::Request::wire_len`].
    #[must_use]
    pub fn wire_len(&self) -> usize {
        let mut n = 4 + self.host.len(); // "sip:" + host
        if !self.user.is_empty() {
            n += self.user.len() + 1; // user + '@'
        }
        if let Some(p) = self.port {
            n += 1 + crate::message::decimal_len(u32::from(p)); // ':' + digits
        }
        for (name, value) in &self.params {
            n += 1 + name.len(); // ';' + name
            if let Some(v) = value {
                n += 1 + v.len(); // '=' + value
            }
        }
        n
    }

    /// The address-of-record key used for registrar lookups: `user@host`
    /// without port or parameters.
    #[must_use]
    pub fn address_of_record(&self) -> String {
        if self.user.is_empty() {
            self.host.clone()
        } else {
            format!("{}@{}", self.user, self.host)
        }
    }
}

impl core::fmt::Display for SipUri {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "sip:")?;
        if !self.user.is_empty() {
            write!(f, "{}@", self.user)?;
        }
        f.write_str(&self.host)?;
        if let Some(p) = self.port {
            write!(f, ":{p}")?;
        }
        for (n, v) in &self.params {
            match v {
                Some(v) => write!(f, ";{n}={v}")?,
                None => write!(f, ";{n}")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_uri() {
        let u = SipUri::parse("sip:1001@pbx.unb.br:5060;transport=udp;lr").unwrap();
        assert_eq!(u.user, "1001");
        assert_eq!(u.host, "pbx.unb.br");
        assert_eq!(u.port, Some(5060));
        assert_eq!(u.param("transport"), Some("udp"));
        assert_eq!(u.param("lr"), None, "valueless param");
        assert!(u.params.iter().any(|(n, v)| n == "lr" && v.is_none()));
    }

    #[test]
    fn parse_minimal_forms() {
        let u = SipUri::parse("sip:pbx.unb.br").unwrap();
        assert!(u.user.is_empty());
        assert_eq!(u.host, "pbx.unb.br");
        assert_eq!(u.port, None);

        let u = SipUri::parse("sip:alice@10.0.0.1").unwrap();
        assert_eq!(u.user, "alice");
        assert_eq!(u.host, "10.0.0.1");
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "sips:alice@host", // unsupported scheme here
            "alice@host",
            "sip:",
            "sip:@host",
            "sip:alice@",
            "sip:alice@host:notaport",
            "sip:alice@host:70000",
            "sip:alice@host;;x",
            "sip:alice@host;=v",
        ] {
            assert!(SipUri::parse(bad).is_none(), "should reject {bad:?}");
        }
    }

    #[test]
    fn display_round_trip() {
        for s in [
            "sip:1001@pbx.unb.br",
            "sip:1001@pbx.unb.br:5060",
            "sip:pbx.unb.br:5060;transport=udp",
            "sip:bob@host;x=1;flag",
        ] {
            let u = SipUri::parse(s).unwrap();
            assert_eq!(u.to_string(), s);
            // And re-parsing yields the identical structure.
            assert_eq!(SipUri::parse(&u.to_string()).unwrap(), u);
        }
    }

    #[test]
    fn builders_and_aor() {
        let u = SipUri::new("2002", "pbx")
            .with_port(5062)
            .with_param("ob", None);
        assert_eq!(u.to_string(), "sip:2002@pbx:5062;ob");
        assert_eq!(u.address_of_record(), "2002@pbx");
        assert_eq!(SipUri::server("pbx").address_of_record(), "pbx");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn token() -> impl Strategy<Value = String> {
        "[a-z][a-z0-9]{0,11}"
    }

    proptest! {
        /// parse ∘ display = id over structurally valid URIs.
        #[test]
        fn display_parse_round_trip(
            user in token(),
            host in "[a-z][a-z0-9.]{0,15}[a-z0-9]",
            port in proptest::option::of(1u16..65535),
            nparams in 0usize..4,
        ) {
            let mut u = SipUri::new(&user, &host);
            u.port = port;
            for i in 0..nparams {
                u.params.push((format!("p{i}"), if i % 2 == 0 { Some(format!("v{i}")) } else { None }));
            }
            let text = u.to_string();
            prop_assert_eq!(text.len(), u.wire_len(), "analytic length is exact");
            let back = SipUri::parse(&text).unwrap();
            prop_assert_eq!(back, u);
        }
    }
}
