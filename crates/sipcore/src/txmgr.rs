//! Transaction manager: the layer that owns every live transaction,
//! matches wire messages to them (RFC 3261 §17.1.3/§17.2.3 branch
//! matching), multiplexes their timers, and forwards what remains to the
//! transaction user.
//!
//! The experiment world runs a deliberately thin fast path (its LAN is
//! near-lossless); this manager is the full-fidelity composition used by
//! the recovery tests and available to any consumer that needs RFC
//! retransmission behaviour for many concurrent transactions.
//!
//! Steady-state operation allocates nothing per message: transaction keys
//! are `Copy` handles into a manager-owned [`AtomTable`] (branch strings
//! are interned once, on first sight), raw datagrams are matched against
//! live transactions through the lazy [`WireMessage`] view so
//! retransmissions are absorbed without a full parse, and outgoing
//! serialization runs through a [`BufferPool`] free list.

use crate::atoms::{Atom, AtomTable};
use crate::message::{Request, Response, SipMessage};
use crate::method::Method;
use crate::parse::{parse_message, ParseError};
use crate::pool::BufferPool;
use crate::transaction::{
    build_non2xx_ack, ClientTx, InviteClientTx, InviteServerTx, ServerTx, TimerConfig, TimerKind,
    TxAction, TxOutcome,
};
use crate::wire::WireMessage;
use core::time::Duration;
use des::FastMap;

/// Identifies a transaction inside the manager.
///
/// Branch strings live in the manager's [`AtomTable`]; the key itself is
/// `Copy` (8 bytes) so it can be stored in timer maps and echoed in
/// [`MgrAction`]s without cloning a `String` per event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TxKey {
    /// INVITE client transaction, by branch.
    InviteClient(Atom),
    /// Non-INVITE client transaction, by branch.
    Client(Atom),
    /// INVITE server transaction, by branch.
    InviteServer(Atom),
    /// Non-INVITE server transaction, by branch + method.
    Server(Atom, Method),
}

/// What the manager asks its host to do.
#[derive(Debug, Clone, PartialEq)]
pub enum MgrAction {
    /// Put this message on the wire.
    Transmit(SipMessage),
    /// Deliver this response to the transaction user.
    DeliverResponse(Response),
    /// Deliver this request to the transaction user (a new server
    /// transaction was created for it; respond via
    /// [`TransactionManager::send_response`] with the returned key).
    DeliverRequest {
        /// Key to respond through.
        key: TxKey,
        /// The request.
        request: Request,
    },
    /// Arm a timer: call [`TransactionManager::on_timer`] with `token`
    /// after `after`.
    Schedule {
        /// Opaque timer token.
        token: u64,
        /// Delay from now.
        after: Duration,
    },
    /// A transaction reached its terminal state and was dropped.
    Ended {
        /// Which transaction.
        key: TxKey,
        /// How it ended.
        outcome: TxOutcome,
    },
}

enum AnyTx {
    InviteClient(InviteClientTx),
    Client(ClientTx),
    InviteServer(InviteServerTx),
    Server(ServerTx),
}

/// The manager.
pub struct TransactionManager {
    cfg: TimerConfig,
    transactions: FastMap<TxKey, AnyTx>,
    timers: FastMap<u64, (TxKey, TimerKind)>,
    next_token: u64,
    branches: AtomTable,
    /// Atom standing in for "no branch" on permissively accepted
    /// hand-built messages.
    unkeyed: Atom,
    pool: BufferPool,
}

impl TransactionManager {
    /// A manager with the given timer configuration.
    #[must_use]
    pub fn new(cfg: TimerConfig) -> Self {
        let mut branches = AtomTable::new();
        let unkeyed = branches.intern("");
        TransactionManager {
            cfg,
            transactions: FastMap::default(),
            timers: FastMap::default(),
            next_token: 0,
            branches,
            unkeyed,
            pool: BufferPool::default(),
        }
    }

    /// Live transaction count.
    #[must_use]
    pub fn active(&self) -> usize {
        self.transactions.len()
    }

    /// Serialize a message into a pooled scratch buffer. Once the pool is
    /// warm this performs no heap allocation; hand the buffer back with
    /// [`TransactionManager::recycle`] after the transport has copied or
    /// consumed it.
    pub fn serialize(&mut self, msg: &SipMessage) -> Vec<u8> {
        self.pool.wire_of(msg)
    }

    /// Return a buffer obtained from [`TransactionManager::serialize`] to
    /// the free list.
    pub fn recycle(&mut self, buf: Vec<u8>) {
        self.pool.release(buf);
    }

    /// Pool counters: `(buffers handed out, of which reused)`.
    #[must_use]
    pub fn pool_stats(&self) -> (u64, u64) {
        self.pool.stats()
    }

    /// Number of distinct branch strings interned so far.
    #[must_use]
    pub fn interned_branches(&self) -> usize {
        self.branches.len()
    }

    /// Start a client transaction for an outgoing request (except ACK,
    /// which is transaction-less for 2xx and handled by the INVITE client
    /// transaction for non-2xx).
    pub fn send_request(&mut self, req: Request) -> Vec<MgrAction> {
        let branch = match req.top_via_branch() {
            Some(b) => self.branches.intern(b),
            // No branch: fire and forget (the RFC requires one; we stay
            // permissive for hand-built messages).
            None => return vec![MgrAction::Transmit(req.into())],
        };
        if req.method == Method::Ack {
            return vec![MgrAction::Transmit(req.into())];
        }
        let (key, tx, actions) = if req.method.is_invite() {
            let (tx, actions) = InviteClientTx::new(req, self.cfg);
            (
                TxKey::InviteClient(branch),
                AnyTx::InviteClient(tx),
                actions,
            )
        } else {
            let (tx, actions) = ClientTx::new(req, self.cfg);
            (TxKey::Client(branch), AnyTx::Client(tx), actions)
        };
        self.transactions.insert(key, tx);
        self.map_actions(key, actions)
    }

    /// Send a response through a server transaction created by a prior
    /// [`MgrAction::DeliverRequest`].
    pub fn send_response(&mut self, key: &TxKey, resp: Response) -> Vec<MgrAction> {
        let actions = match self.transactions.get_mut(key) {
            Some(AnyTx::InviteServer(tx)) => tx.send_response(resp),
            Some(AnyTx::Server(tx)) => tx.send_response(resp),
            _ => return vec![],
        };
        self.map_actions(*key, actions)
    }

    /// A raw datagram arrived. Retransmissions of requests whose branch is
    /// already known are matched and absorbed through the borrowed
    /// [`WireMessage`] view — replaying the stored response without ever
    /// building a structured message. Everything else falls through to a
    /// full parse and [`TransactionManager::on_message`].
    ///
    /// # Errors
    ///
    /// Propagates [`ParseError`] from the full parser when the datagram is
    /// not a retransmission and fails to parse.
    pub fn on_wire(&mut self, bytes: &[u8]) -> Result<Vec<MgrAction>, ParseError> {
        if let Some(absorbed) = self.try_absorb_retransmit(bytes) {
            return Ok(absorbed);
        }
        Ok(self.on_message(parse_message(bytes)?))
    }

    /// Cheap-path matcher for [`TransactionManager::on_wire`]: `Some` iff
    /// the datagram is a request retransmission for a live server
    /// transaction. Uses only borrowed header slices and a non-interning
    /// branch lookup, so unseen traffic costs no allocation here.
    fn try_absorb_retransmit(&mut self, bytes: &[u8]) -> Option<Vec<MgrAction>> {
        let view = WireMessage::parse(bytes)?;
        if !view.is_request() {
            return None;
        }
        let method = Method::from_token(view.method_token()?)?;
        let branch = self.branches.lookup(view.top_via_branch()?)?;
        let key = match method {
            Method::Invite => TxKey::InviteServer(branch),
            Method::Ack => {
                let key = TxKey::InviteServer(branch);
                if let Some(AnyTx::InviteServer(tx)) = self.transactions.get_mut(&key) {
                    let actions = tx.on_ack();
                    return Some(self.map_actions(key, actions));
                }
                return None; // 2xx ACK: full parse, deliver to the TU
            }
            m => TxKey::Server(branch, m),
        };
        let actions = match self.transactions.get_mut(&key)? {
            AnyTx::InviteServer(tx) => tx.on_retransmit(),
            AnyTx::Server(tx) => tx.on_retransmit(),
            _ => return None,
        };
        Some(self.map_actions(key, actions))
    }

    /// A message arrived from the wire.
    pub fn on_message(&mut self, msg: SipMessage) -> Vec<MgrAction> {
        match msg {
            SipMessage::Request(req) => self.on_request(req),
            SipMessage::Response(resp) => self.on_response(resp),
        }
    }

    fn on_request(&mut self, req: Request) -> Vec<MgrAction> {
        let branch = match req.top_via_branch() {
            Some(b) => self.branches.intern(b),
            None => {
                let key = TxKey::Server(self.unkeyed, req.method);
                return vec![MgrAction::DeliverRequest { key, request: req }];
            }
        };
        match req.method {
            Method::Invite => {
                let key = TxKey::InviteServer(branch);
                if let Some(AnyTx::InviteServer(tx)) = self.transactions.get_mut(&key) {
                    let actions = tx.on_retransmit();
                    return self.map_actions(key, actions);
                }
                self.transactions
                    .insert(key, AnyTx::InviteServer(InviteServerTx::new(self.cfg)));
                vec![MgrAction::DeliverRequest { key, request: req }]
            }
            Method::Ack => {
                // Matches the INVITE server transaction's branch (non-2xx
                // case); otherwise it is a 2xx ACK for the TU.
                let key = TxKey::InviteServer(branch);
                if let Some(AnyTx::InviteServer(tx)) = self.transactions.get_mut(&key) {
                    let actions = tx.on_ack();
                    return self.map_actions(key, actions);
                }
                vec![MgrAction::DeliverRequest {
                    key: TxKey::Server(self.unkeyed, Method::Ack),
                    request: req,
                }]
            }
            method => {
                let key = TxKey::Server(branch, method);
                if let Some(AnyTx::Server(tx)) = self.transactions.get_mut(&key) {
                    let actions = tx.on_retransmit();
                    return self.map_actions(key, actions);
                }
                self.transactions
                    .insert(key, AnyTx::Server(ServerTx::new(self.cfg)));
                vec![MgrAction::DeliverRequest { key, request: req }]
            }
        }
    }

    fn on_response(&mut self, resp: Response) -> Vec<MgrAction> {
        let branch = match resp.top_via_branch() {
            Some(b) => match self.branches.lookup(b) {
                Some(a) => a,
                // A branch we never sent: nothing of ours can match.
                None => return vec![MgrAction::DeliverResponse(resp)],
            },
            None => return vec![MgrAction::DeliverResponse(resp)],
        };
        let key = if resp.cseq_method() == Some(Method::Invite) {
            TxKey::InviteClient(branch)
        } else {
            TxKey::Client(branch)
        };
        let actions = match self.transactions.get_mut(&key) {
            Some(AnyTx::InviteClient(tx)) => tx.on_response(resp, build_non2xx_ack),
            Some(AnyTx::Client(tx)) => tx.on_response(resp),
            // No transaction (e.g. a retransmitted 2xx after termination):
            // straight to the TU, which owns 2xx retransmission handling.
            _ => return vec![MgrAction::DeliverResponse(resp)],
        };
        self.map_actions(key, actions)
    }

    /// A previously scheduled timer token fired.
    pub fn on_timer(&mut self, token: u64) -> Vec<MgrAction> {
        let Some((key, kind)) = self.timers.remove(&token) else {
            return vec![]; // timer for a finished transaction
        };
        let actions = match self.transactions.get_mut(&key) {
            Some(AnyTx::InviteClient(tx)) => tx.on_timer(kind),
            Some(AnyTx::Client(tx)) => tx.on_timer(kind),
            Some(AnyTx::InviteServer(tx)) => tx.on_timer(kind),
            Some(AnyTx::Server(tx)) => tx.on_timer(kind),
            None => return vec![],
        };
        self.map_actions(key, actions)
    }

    fn map_actions(&mut self, key: TxKey, actions: Vec<TxAction>) -> Vec<MgrAction> {
        let mut out = Vec::with_capacity(actions.len());
        for act in actions {
            match act {
                TxAction::TransmitRequest(r) => out.push(MgrAction::Transmit(r.into())),
                TxAction::TransmitResponse(r) => out.push(MgrAction::Transmit(r.into())),
                TxAction::DeliverResponse(r) => out.push(MgrAction::DeliverResponse(r)),
                TxAction::SetTimer(kind, after) => {
                    let token = self.next_token;
                    self.next_token += 1;
                    self.timers.insert(token, (key, kind));
                    out.push(MgrAction::Schedule { token, after });
                }
                TxAction::Terminated(outcome) => {
                    self.transactions.remove(&key);
                    self.timers.retain(|_, (k, _)| *k != key);
                    out.push(MgrAction::Ended { key, outcome });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::headers::HeaderName;
    use crate::message::format_via;
    use crate::uri::SipUri;
    use crate::StatusCode;

    fn invite(branch: &str) -> Request {
        Request::new(Method::Invite, SipUri::parse("sip:bob@pbx").unwrap())
            .header(HeaderName::Via, format_via("a", 5060, branch))
            .header(HeaderName::From, "<sip:alice@pbx>;tag=f")
            .header(HeaderName::To, "<sip:bob@pbx>")
            .header(HeaderName::CallId, format!("cid-{branch}"))
            .header(HeaderName::CSeq, "1 INVITE")
    }

    fn bye(branch: &str) -> Request {
        Request::new(Method::Bye, SipUri::parse("sip:bob@pbx").unwrap())
            .header(HeaderName::Via, format_via("a", 5060, branch))
            .header(HeaderName::CallId, format!("cid-{branch}"))
            .header(HeaderName::CSeq, "2 BYE")
    }

    fn transmits(acts: &[MgrAction]) -> usize {
        acts.iter()
            .filter(|a| matches!(a, MgrAction::Transmit(_)))
            .count()
    }

    #[test]
    fn client_lifecycle_through_manager() {
        let mut mgr = TransactionManager::new(TimerConfig::default());
        let req = invite("z9hG4bKm1");
        let acts = mgr.send_request(req.clone());
        assert_eq!(transmits(&acts), 1);
        assert_eq!(mgr.active(), 1);
        // 200 terminates the INVITE client transaction.
        let acts = mgr.on_message(req.make_response(StatusCode::OK).into());
        assert!(acts
            .iter()
            .any(|a| matches!(a, MgrAction::DeliverResponse(r) if r.status == StatusCode::OK)));
        assert!(acts.iter().any(|a| matches!(
            a,
            MgrAction::Ended {
                outcome: TxOutcome::Normal,
                ..
            }
        )));
        assert_eq!(mgr.active(), 0);
    }

    #[test]
    fn concurrent_transactions_do_not_cross() {
        let mut mgr = TransactionManager::new(TimerConfig::default());
        let a = invite("z9hG4bKa");
        let b = invite("z9hG4bKb");
        mgr.send_request(a.clone());
        mgr.send_request(b.clone());
        assert_eq!(mgr.active(), 2);
        // Answer only A; B stays live.
        mgr.on_message(a.make_response(StatusCode::OK).into());
        assert_eq!(mgr.active(), 1);
        mgr.on_message(b.make_response(StatusCode::OK).into());
        assert_eq!(mgr.active(), 0);
    }

    #[test]
    fn timer_tokens_route_to_their_transaction() {
        let mut mgr = TransactionManager::new(TimerConfig::default());
        let acts = mgr.send_request(invite("z9hG4bKt"));
        let tokens: Vec<u64> = acts
            .iter()
            .filter_map(|a| match a {
                MgrAction::Schedule { token, .. } => Some(*token),
                _ => None,
            })
            .collect();
        assert_eq!(tokens.len(), 2, "timers A and B armed");
        // Timer A: a retransmission comes out.
        let acts = mgr.on_timer(tokens[0]);
        assert_eq!(transmits(&acts), 1);
        // Timer B: timeout ends the transaction.
        let acts = mgr.on_timer(tokens[1]);
        assert!(acts.iter().any(|a| matches!(
            a,
            MgrAction::Ended {
                outcome: TxOutcome::Timeout,
                ..
            }
        )));
        assert_eq!(mgr.active(), 0);
        // Stale token after termination: silently ignored.
        assert!(mgr.on_timer(tokens[0]).is_empty());
    }

    #[test]
    fn server_side_delivers_then_responds() {
        let mut mgr = TransactionManager::new(TimerConfig::default());
        let req = invite("z9hG4bKs");
        let acts = mgr.on_message(req.clone().into());
        let key = match &acts[0] {
            MgrAction::DeliverRequest { key, request } => {
                assert_eq!(request.method, Method::Invite);
                *key
            }
            other => panic!("{other:?}"),
        };
        assert_eq!(mgr.active(), 1);
        // Retransmitted INVITE before any response: absorbed silently.
        let acts = mgr.on_message(req.clone().into());
        assert!(acts.is_empty());
        // TU answers 200: transmitted, transaction ends (2xx rule).
        let acts = mgr.send_response(&key, req.make_response(StatusCode::OK));
        assert_eq!(transmits(&acts), 1);
        assert!(acts.iter().any(|a| matches!(a, MgrAction::Ended { .. })));
        assert_eq!(mgr.active(), 0);
    }

    #[test]
    fn server_retransmit_replays_response() {
        let mut mgr = TransactionManager::new(TimerConfig::default());
        let req = bye("z9hG4bKrb");
        let acts = mgr.on_message(req.clone().into());
        let key = match &acts[0] {
            MgrAction::DeliverRequest { key, .. } => *key,
            other => panic!("{other:?}"),
        };
        mgr.send_response(&key, req.make_response(StatusCode::OK));
        // Retransmitted BYE: the stored 200 is replayed without a new
        // delivery to the TU.
        let acts = mgr.on_message(req.into());
        assert_eq!(transmits(&acts), 1);
        assert!(!acts
            .iter()
            .any(|a| matches!(a, MgrAction::DeliverRequest { .. })));
    }

    #[test]
    fn ack_to_2xx_bypasses_transactions() {
        let mut mgr = TransactionManager::new(TimerConfig::default());
        let ack = Request::new(Method::Ack, SipUri::parse("sip:bob@pbx").unwrap())
            .header(HeaderName::Via, format_via("a", 5060, "z9hG4bKnew"))
            .header(HeaderName::CallId, "cid-x")
            .header(HeaderName::CSeq, "1 ACK");
        let acts = mgr.on_message(ack.into());
        assert!(
            matches!(&acts[0], MgrAction::DeliverRequest { request, .. } if request.method == Method::Ack)
        );
        assert_eq!(mgr.active(), 0, "no transaction for a 2xx ACK");
        // Sending an ACK is transaction-less too.
        let ack2 = Request::new(Method::Ack, SipUri::parse("sip:bob@pbx").unwrap())
            .header(HeaderName::Via, format_via("a", 5060, "z9hG4bKout"));
        let acts = mgr.send_request(ack2);
        assert_eq!(transmits(&acts), 1);
        assert_eq!(mgr.active(), 0);
    }

    #[test]
    fn unmatched_response_goes_to_tu() {
        let mut mgr = TransactionManager::new(TimerConfig::default());
        let stray = invite("z9hG4bKgone").make_response(StatusCode::OK);
        let acts = mgr.on_message(stray.into());
        assert!(matches!(&acts[0], MgrAction::DeliverResponse(r) if r.status == StatusCode::OK));
    }

    #[test]
    fn same_branch_different_method_servers_are_distinct() {
        let mut mgr = TransactionManager::new(TimerConfig::default());
        // An in-dialog BYE re-using a branch string must not collide with
        // an OPTIONS using the same branch (distinct server transactions).
        let b = bye("z9hG4bKshared");
        let o = Request::new(Method::Options, SipUri::parse("sip:pbx").unwrap())
            .header(HeaderName::Via, format_via("a", 5060, "z9hG4bKshared"))
            .header(HeaderName::CSeq, "3 OPTIONS");
        mgr.on_message(b.into());
        mgr.on_message(o.into());
        assert_eq!(mgr.active(), 2);
        assert_eq!(mgr.interned_branches(), 2, "\"\" + one shared branch");
    }

    #[test]
    fn invite_retransmission_storm_terminates_cleanly() {
        // A UAC that never sees our 486 (lossy path back) hammers the
        // server transaction with retransmitted INVITEs. The transaction
        // must absorb the storm by replaying the response, keep its timer
        // tokens strictly monotonic, and still walk the RFC 3261 §17.2.1
        // Completed → Confirmed → Terminated path without leaving
        // anything behind in the manager's maps.
        let mut mgr = TransactionManager::new(TimerConfig::default());
        let req = invite("z9hG4bKstorm");
        let mut tokens: Vec<u64> = Vec::new();
        let collect = |acts: &[MgrAction], tokens: &mut Vec<u64>| {
            for a in acts {
                if let MgrAction::Schedule { token, .. } = a {
                    tokens.push(*token);
                }
            }
        };

        let acts = mgr.on_message(req.clone().into());
        collect(&acts, &mut tokens);
        let key = match &acts[0] {
            MgrAction::DeliverRequest { key, .. } => *key,
            other => panic!("{other:?}"),
        };
        let acts = mgr.send_response(&key, req.make_response(StatusCode::BUSY_HERE));
        collect(&acts, &mut tokens);
        assert_eq!(transmits(&acts), 1, "486 goes out");

        // The flood: every retransmit replays the 486, never re-delivers
        // to the TU, and never spawns a second transaction.
        for _ in 0..50 {
            let acts = mgr.on_message(req.clone().into());
            collect(&acts, &mut tokens);
            assert_eq!(transmits(&acts), 1, "response replayed");
            assert!(
                !acts
                    .iter()
                    .any(|a| matches!(a, MgrAction::DeliverRequest { .. })),
                "storm must not reach the TU"
            );
            assert_eq!(mgr.active(), 1, "no duplicate transactions");
        }
        assert!(
            tokens.windows(2).all(|w| w[1] > w[0]),
            "timer tokens strictly monotonic: {tokens:?}"
        );

        // The ACK finally lands: Completed → Confirmed.
        let ack = Request::new(Method::Ack, SipUri::parse("sip:bob@pbx").unwrap())
            .header(HeaderName::Via, format_via("a", 5060, "z9hG4bKstorm"))
            .header(HeaderName::CallId, "cid-z9hG4bKstorm")
            .header(HeaderName::CSeq, "1 ACK");
        let acts = mgr.on_message(ack.into());
        collect(&acts, &mut tokens);
        assert_eq!(mgr.active(), 1, "confirmed, waiting out timer I");

        // Fire everything scheduled; exactly one termination comes out
        // (timer I), stale retransmit timers are inert.
        let ended = tokens
            .clone()
            .into_iter()
            .flat_map(|t| mgr.on_timer(t))
            .filter(|a| {
                matches!(
                    a,
                    MgrAction::Ended {
                        outcome: TxOutcome::Normal,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(ended, 1, "terminates exactly once, in the normal state");
        assert_eq!(mgr.active(), 0, "no leaked transaction entries");
        // Every token is now stale: the timer map is clean too.
        for t in tokens {
            assert!(mgr.on_timer(t).is_empty(), "stale token {t} must be dead");
        }
    }

    #[test]
    fn non_invite_client_times_out_cleanly() {
        let mut mgr = TransactionManager::new(TimerConfig::default());
        let acts = mgr.send_request(bye("z9hG4bKto"));
        let f_token = acts
            .iter()
            .filter_map(|a| match a {
                MgrAction::Schedule { token, .. } => Some(*token),
                _ => None,
            })
            .nth(1)
            .expect("timer F");
        let acts = mgr.on_timer(f_token);
        assert!(acts.iter().any(|a| matches!(
            a,
            MgrAction::Ended {
                outcome: TxOutcome::Timeout,
                ..
            }
        )));
        assert_eq!(mgr.active(), 0);
    }

    #[test]
    fn wire_retransmission_absorbed_without_full_parse() {
        let mut mgr = TransactionManager::new(TimerConfig::default());
        let req = bye("z9hG4bKwire");
        let wire = req.to_wire();

        // First arrival: fresh, fully parsed and delivered.
        let acts = mgr.on_wire(&wire).unwrap();
        let key = match &acts[0] {
            MgrAction::DeliverRequest { key, request } => {
                assert_eq!(request.method, Method::Bye);
                *key
            }
            other => panic!("{other:?}"),
        };
        mgr.send_response(&key, req.make_response(StatusCode::OK));
        let interned_after_first = mgr.interned_branches();

        // Retransmission from the same bytes: the 200 is replayed from
        // the lazy view — nothing reaches the TU and the atom table does
        // not grow (the cheap path never interns).
        for _ in 0..10 {
            let acts = mgr.on_wire(&wire).unwrap();
            assert_eq!(transmits(&acts), 1, "stored 200 replayed");
            assert!(!acts
                .iter()
                .any(|a| matches!(a, MgrAction::DeliverRequest { .. })));
        }
        assert_eq!(mgr.interned_branches(), interned_after_first);
    }

    #[test]
    fn wire_garbage_is_a_parse_error() {
        let mut mgr = TransactionManager::new(TimerConfig::default());
        assert!(mgr.on_wire(b"NOT SIP AT ALL").is_err());
    }

    #[test]
    fn pooled_serialization_reuses_buffers() {
        let mut mgr = TransactionManager::new(TimerConfig::default());
        let msg: SipMessage = invite("z9hG4bKpool").into();
        let a = mgr.serialize(&msg);
        assert_eq!(a, msg.to_wire(), "pooled bytes identical to the wire");
        mgr.recycle(a);
        let b = mgr.serialize(&msg);
        assert_eq!(b, msg.to_wire());
        assert_eq!(
            mgr.pool_stats(),
            (2, 1),
            "second buffer came off the free list"
        );
        mgr.recycle(b);
    }
}
