//! Lazy SDP wire views, interned summaries and allocation-free builders —
//! the session-description counterpart of [`crate::wire::WireMessage`].
//!
//! Every INVITE/200 in the stack carries a one-audio-stream session
//! description. The eager [`SessionDescription`] round-trips it through
//! owned `String` parse and `Vec<u8>` rebuild per hop — the last per-call
//! allocation hot spot the zero-alloc signalling plane left uncovered.
//! This module closes it with three pieces:
//!
//! * [`SdpView`] — a borrowed, zero-allocation view over raw body bytes
//!   answering the fields signalling actually routes on (origin user,
//!   connection address, audio port, payload-type list) straight from
//!   the wire. Tolerant: a non-UTF-8 or malformed line never poisons the
//!   rest of the body, the affected accessor just skips it.
//! * [`SdpSummary`] — the `Copy` compact form for dialog state: port and
//!   codec inline, origin/connection interned through
//!   [`crate::atoms::AtomTable`]. Four machine words per leg instead of
//!   two heap strings.
//! * [`SdpBody`] — a self-contained structured body (shared `Arc<str>`
//!   endpoints, analytic [`SdpBody::len`]) that a [`crate::message::Body`]
//!   carries across hops without the text ever being materialized; and
//!   the allocation-free serializers [`write_sdp`] / [`body_len`] /
//!   [`SdpSummary::to_body_into`] that write it into pooled buffers when
//!   bytes are finally needed.
//!
//! On any body the owned parser accepts, every accessor here agrees with
//! [`SessionDescription::parse`] field-for-field; a property test below
//! pins that agreement together with the build→parse round-trip.

use crate::atoms::{Atom, AtomTable};
use crate::message::decimal_len;
use crate::pool::BufferPool;
use crate::sdp::{SdpCodec, SessionDescription};
use std::sync::Arc;

/// A borrowed, zero-allocation view over one SDP body.
///
/// Accessors scan lazily, byte-line-wise: lines are split on `\n`
/// (tolerating `\r\n`), each line is considered independently, and the
/// first line that yields a usable value wins. Garbage — including
/// non-UTF-8 bytes — in one line never hides a well-formed line elsewhere.
#[derive(Debug, Clone, Copy)]
pub struct SdpView<'a> {
    body: &'a [u8],
}

impl<'a> SdpView<'a> {
    /// Build a view over `body`. Returns `None` only for an empty body —
    /// the one case where no accessor could ever answer.
    #[must_use]
    pub fn parse(body: &'a [u8]) -> Option<SdpView<'a>> {
        if body.is_empty() {
            return None;
        }
        Some(SdpView { body })
    }

    /// The underlying body bytes.
    #[must_use]
    pub fn as_bytes(&self) -> &'a [u8] {
        self.body
    }

    /// Lines as `&str`, skipping non-UTF-8 lines, with trailing `\r` and
    /// whitespace trimmed.
    fn lines(&self) -> impl Iterator<Item = &'a str> {
        self.body
            .split(|&b| b == b'\n')
            .filter_map(|raw| std::str::from_utf8(raw).ok())
            .map(str::trim_end)
    }

    /// Origin username: the first token of the first `o=` line that has
    /// one.
    #[must_use]
    pub fn origin_user(&self) -> Option<&'a str> {
        self.lines()
            .filter_map(|l| l.strip_prefix("o="))
            .find_map(|rest| rest.split_whitespace().next())
    }

    /// Connection address: the third token (`c=IN IP4 <addr>`) of the
    /// first `c=` line that has one.
    #[must_use]
    pub fn connection(&self) -> Option<&'a str> {
        self.lines()
            .filter_map(|l| l.strip_prefix("c="))
            .find_map(|rest| rest.split_whitespace().nth(2))
    }

    /// The first `m=audio` line with a parseable port: `(port, rest after
    /// the proto token)`.
    fn audio_media(&self) -> Option<(u16, &'a str)> {
        self.lines()
            .filter_map(|l| l.strip_prefix("m=audio "))
            .find_map(|rest| {
                let (port_tok, after_port) = split_token(rest)?;
                let port: u16 = port_tok.parse().ok()?;
                let (_proto, after_proto) = split_token(after_port)?;
                Some((port, after_proto))
            })
    }

    /// Audio media port from the winning `m=audio` line.
    #[must_use]
    pub fn audio_port(&self) -> Option<u16> {
        Some(self.audio_media()?.0)
    }

    /// RTP payload types listed on the winning `m=audio` line, straight
    /// from the wire (tokens that do not parse as `u8` are skipped).
    pub fn payload_types(&self) -> impl Iterator<Item = u8> + 'a {
        self.audio_media()
            .map(|(_, rest)| rest)
            .unwrap_or("")
            .split_whitespace()
            .filter_map(|t| t.parse().ok())
    }

    /// The negotiable codec: the first listed payload type, if this stack
    /// knows it. `None` when the body offers only unknown payload types
    /// (or no audio stream at all).
    #[must_use]
    pub fn codec(&self) -> Option<SdpCodec> {
        SdpCodec::from_payload_type(self.payload_types().next()?)
    }

    /// Compact the view into a [`SdpSummary`], interning the endpoint
    /// strings. `None` when no usable audio stream is present — the same
    /// condition under which [`SessionDescription::parse`] returns `None`.
    /// Steady state (endpoint strings already interned) allocates nothing.
    #[must_use]
    pub fn summarize(&self, atoms: &mut AtomTable) -> Option<SdpSummary> {
        let (audio_port, _) = self.audio_media()?;
        let codec = self.codec()?;
        Some(SdpSummary {
            audio_port,
            codec,
            conn: atoms.intern(self.connection().unwrap_or("")),
            origin: atoms.intern(self.origin_user().unwrap_or("")),
        })
    }

    /// Upgrade to the eager owned form (the fields the view answers,
    /// copied into `String`s). Agrees with [`SessionDescription::parse`]
    /// by construction — the owned parser delegates here.
    #[must_use]
    pub fn to_session(&self) -> Option<SessionDescription> {
        let (audio_port, _) = self.audio_media()?;
        Some(SessionDescription {
            origin_user: self.origin_user().unwrap_or("").to_owned(),
            connection: self.connection().unwrap_or("").to_owned(),
            audio_port,
            codec: self.codec()?,
        })
    }
}

/// A session description compacted for dialog state: `Copy`, four machine
/// words, endpoint strings interned through an [`AtomTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SdpSummary {
    /// Audio media port (`m=audio <port> ...`).
    pub audio_port: u16,
    /// Negotiated codec (first recognized payload type).
    pub codec: SdpCodec,
    /// Interned connection address (`c=IN IP4 <addr>`).
    pub conn: Atom,
    /// Interned origin username (`o=<user> ...`).
    pub origin: Atom,
}

impl SdpSummary {
    /// Summarize any message body form: a structured [`crate::message::Body::Sdp`]
    /// by direct field reads, raw bytes through a lazy [`SdpView`].
    #[must_use]
    pub fn of_body(body: &crate::message::Body, atoms: &mut AtomTable) -> Option<SdpSummary> {
        match body {
            crate::message::Body::Bytes(b) => SdpView::parse(b)?.summarize(atoms),
            crate::message::Body::Sdp(s) => Some(SdpSummary {
                audio_port: s.audio_port,
                codec: s.codec,
                conn: atoms.intern(&s.connection),
                origin: atoms.intern(&s.origin_user),
            }),
        }
    }

    /// Exact length of the body [`SdpSummary::write_sdp`] produces,
    /// computed without serializing.
    #[must_use]
    pub fn body_len(&self, atoms: &AtomTable) -> usize {
        body_len(
            atoms.resolve(self.origin),
            atoms.resolve(self.conn),
            self.audio_port,
            self.codec,
        )
    }

    /// Serialize into a caller-supplied buffer (appending), allocating
    /// nothing beyond what the buffer itself must grow.
    pub fn write_sdp(&self, atoms: &AtomTable, out: &mut Vec<u8>) {
        write_sdp(
            out,
            atoms.resolve(self.origin),
            atoms.resolve(self.conn),
            self.audio_port,
            self.codec,
        );
    }

    /// Serialize into a pooled buffer — zero allocations once the pool
    /// has a released buffer of working capacity. Release the buffer back
    /// with [`BufferPool::release`] after use.
    #[must_use]
    pub fn to_body_into(&self, atoms: &AtomTable, pool: &mut BufferPool) -> Vec<u8> {
        let mut buf = pool.acquire();
        buf.reserve(self.body_len(atoms));
        self.write_sdp(atoms, &mut buf);
        buf
    }

    /// Expand into a self-contained structured body for an outgoing
    /// message — two refcount bumps, no copies.
    #[must_use]
    pub fn to_sdp_body(&self, atoms: &AtomTable) -> SdpBody {
        SdpBody {
            origin_user: atoms.resolve_shared(self.origin),
            connection: atoms.resolve_shared(self.conn),
            audio_port: self.audio_port,
            codec: self.codec,
        }
    }
}

/// A self-contained structured SDP body: what an SDP-bearing message on
/// the interned signalling path carries instead of serialized text. The
/// endpoint strings are shared (`Arc<str>`), so building one from warm
/// state is two refcount bumps; the text form exists only if a consumer
/// actually serializes the message ([`SdpBody::write_into`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SdpBody {
    /// Origin username field (`o=`).
    pub origin_user: Arc<str>,
    /// Connection address (`c=IN IP4 <addr>`).
    pub connection: Arc<str>,
    /// Audio media port (`m=audio <port> ...`).
    pub audio_port: u16,
    /// Offered codec.
    pub codec: SdpCodec,
}

impl SdpBody {
    /// Build a structured offer/answer body.
    #[must_use]
    pub fn new(
        origin_user: impl Into<Arc<str>>,
        connection: impl Into<Arc<str>>,
        audio_port: u16,
        codec: SdpCodec,
    ) -> Self {
        SdpBody {
            origin_user: origin_user.into(),
            connection: connection.into(),
            audio_port,
            codec,
        }
    }

    /// Exact serialized length, computed without serializing — what the
    /// interned signalling path uses for frame sizing and Content-Length.
    #[must_use]
    pub fn len(&self) -> usize {
        body_len(
            &self.origin_user,
            &self.connection,
            self.audio_port,
            self.codec,
        )
    }

    /// An SDP body always has content.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Serialize into a caller-supplied buffer (appending). Byte-identical
    /// to [`SessionDescription::to_body`] for the same fields.
    pub fn write_into(&self, out: &mut Vec<u8>) {
        write_sdp(
            out,
            &self.origin_user,
            &self.connection,
            self.audio_port,
            self.codec,
        );
    }

    /// The eager owned form (copies the endpoint strings).
    #[must_use]
    pub fn to_session(&self) -> SessionDescription {
        SessionDescription {
            origin_user: self.origin_user.to_string(),
            connection: self.connection.to_string(),
            audio_port: self.audio_port,
            codec: self.codec,
        }
    }
}

/// Serialize a one-audio-stream session description into `out`
/// (appending) — the zero-allocation core every SDP builder shares.
/// Byte-identical to [`SessionDescription::to_body`].
pub fn write_sdp(
    out: &mut Vec<u8>,
    origin_user: &str,
    connection: &str,
    port: u16,
    codec: SdpCodec,
) {
    let pt = codec.payload_type();
    out.extend_from_slice(b"v=0\r\no=");
    out.extend_from_slice(origin_user.as_bytes());
    out.extend_from_slice(b" 0 0 IN IP4 ");
    out.extend_from_slice(connection.as_bytes());
    out.extend_from_slice(b"\r\ns=call\r\nc=IN IP4 ");
    out.extend_from_slice(connection.as_bytes());
    out.extend_from_slice(b"\r\nt=0 0\r\nm=audio ");
    write_decimal(out, u32::from(port));
    out.extend_from_slice(b" RTP/AVP ");
    write_decimal(out, u32::from(pt));
    out.extend_from_slice(b"\r\na=rtpmap:");
    write_decimal(out, u32::from(pt));
    out.push(b' ');
    out.extend_from_slice(codec.encoding_name().as_bytes());
    out.extend_from_slice(b"/8000\r\na=ptime:20\r\n");
}

/// Exact length of [`write_sdp`]'s output for these fields, computed
/// without serializing.
#[must_use]
pub fn body_len(origin_user: &str, connection: &str, port: u16, codec: SdpCodec) -> usize {
    let pt_len = decimal_len(u32::from(codec.payload_type()));
    // v=0 | o=<user> 0 0 IN IP4 <conn> | s=call | c=IN IP4 <conn> | t=0 0
    5 + 2 + origin_user.len() + 12 + connection.len() + 2
        + 8
        + 9 + connection.len() + 2
        + 7
        // m=audio <port> RTP/AVP <pt>
        + 8 + decimal_len(u32::from(port)) + 9 + pt_len + 2
        // a=rtpmap:<pt> <enc>/8000 | a=ptime:20
        + 9 + pt_len + 1 + codec.encoding_name().len() + 7
        + 12
}

/// Split the first whitespace-delimited token off `s`: `(token, rest)`.
fn split_token(s: &str) -> Option<(&str, &str)> {
    let s = s.trim_start();
    if s.is_empty() {
        return None;
    }
    match s.find(char::is_whitespace) {
        Some(i) => Some((&s[..i], &s[i..])),
        None => Some((s, "")),
    }
}

/// Write `n` in decimal without a heap round-trip.
fn write_decimal(out: &mut Vec<u8>, n: u32) {
    let mut buf = [0u8; 10];
    let mut i = buf.len();
    let mut n = n;
    loop {
        i -= 1;
        buf[i] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    out.extend_from_slice(&buf[i..]);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn offer() -> SessionDescription {
        SessionDescription::new("1001", "sipp-client", 20_000, SdpCodec::Pcmu)
    }

    #[test]
    fn view_agrees_with_owned_parse_on_built_bodies() {
        let body = offer().to_body();
        let v = SdpView::parse(&body).unwrap();
        assert_eq!(v.origin_user(), Some("1001"));
        assert_eq!(v.connection(), Some("sipp-client"));
        assert_eq!(v.audio_port(), Some(20_000));
        assert_eq!(v.payload_types().collect::<Vec<_>>(), vec![0]);
        assert_eq!(v.codec(), Some(SdpCodec::Pcmu));
        assert_eq!(v.to_session(), Some(offer()));
    }

    #[test]
    fn view_is_tolerant_of_garbage_lines() {
        // A non-UTF-8 line and a malformed o= line ride along with a
        // valid media description: the view (and through it the owned
        // parser) still answers from the good lines.
        let mut body = Vec::new();
        body.extend_from_slice(b"o=\r\n");
        body.extend_from_slice(&[0xFF, 0xFE, 0x01, b'\n']);
        body.extend_from_slice(b"o=alice 0 0 IN IP4 h\r\n");
        body.extend_from_slice(b"c=IN IP4 10.0.0.9\r\n");
        body.extend_from_slice(b"m=audio bad RTP/AVP 0\r\n");
        body.extend_from_slice(b"m=audio 7000 RTP/AVP 8\r\n");
        let v = SdpView::parse(&body).unwrap();
        assert_eq!(v.origin_user(), Some("alice"));
        assert_eq!(v.connection(), Some("10.0.0.9"));
        assert_eq!(v.audio_port(), Some(7000));
        assert_eq!(v.codec(), Some(SdpCodec::Pcma));
    }

    #[test]
    fn view_rejects_only_the_empty_body() {
        assert!(SdpView::parse(b"").is_none());
        let v = SdpView::parse(&[0xFF, 0xFE]).unwrap();
        assert_eq!(v.audio_port(), None);
        assert_eq!(v.codec(), None);
        assert_eq!(v.to_session(), None);
    }

    #[test]
    fn unknown_payload_types_are_listed_but_not_negotiable() {
        let body = b"c=IN IP4 h\r\nm=audio 5000 RTP/AVP 96 101\r\n";
        let v = SdpView::parse(body).unwrap();
        assert_eq!(v.payload_types().collect::<Vec<_>>(), vec![96, 101]);
        assert_eq!(v.codec(), None, "first listed PT wins, and it is unknown");
        assert_eq!(v.to_session(), None);
    }

    #[test]
    fn summary_interns_and_round_trips() {
        let body = offer().to_body();
        let mut atoms = AtomTable::new();
        let s = SdpView::parse(&body)
            .unwrap()
            .summarize(&mut atoms)
            .unwrap();
        assert_eq!(s.audio_port, 20_000);
        assert_eq!(s.codec, SdpCodec::Pcmu);
        assert_eq!(atoms.resolve(s.origin), "1001");
        assert_eq!(atoms.resolve(s.conn), "sipp-client");

        // Analytic length is exact and the rebuilt body is byte-identical.
        let mut pool = BufferPool::default();
        let rebuilt = s.to_body_into(&atoms, &mut pool);
        assert_eq!(rebuilt.len(), s.body_len(&atoms));
        assert_eq!(rebuilt, body);
        pool.release(rebuilt);

        // Expanding to a structured body preserves the fields.
        let sdp_body = s.to_sdp_body(&atoms);
        assert_eq!(sdp_body.len(), body.len());
        let mut written = Vec::new();
        sdp_body.write_into(&mut written);
        assert_eq!(written, body);
        assert_eq!(sdp_body.to_session(), offer());
    }

    #[test]
    fn summary_of_structured_body_reads_fields_directly() {
        let mut atoms = AtomTable::new();
        let body = crate::message::Body::Sdp(SdpBody::new("a", "h", 9000, SdpCodec::Pcma));
        let s = SdpSummary::of_body(&body, &mut atoms).unwrap();
        assert_eq!(s.audio_port, 9000);
        assert_eq!(s.codec, SdpCodec::Pcma);
        assert_eq!(atoms.resolve(s.conn), "h");
        assert_eq!(atoms.resolve(s.origin), "a");
    }

    #[test]
    fn body_len_matches_write_for_extreme_ports() {
        for port in [0u16, 9, 10, 65_535] {
            for codec in [SdpCodec::Pcmu, SdpCodec::Pcma] {
                let mut out = Vec::new();
                write_sdp(&mut out, "u", "conn.example", port, codec);
                assert_eq!(out.len(), body_len("u", "conn.example", port, codec));
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// One generated SDP line from a `(kind, token, port, pt, extra_pts)`
    /// draw: well-formed o=/c=/m= lines in arbitrary order, m= lines with
    /// unknown or multiple payload types, and malformed/garbage lines.
    fn render_line(kind: u8, tok: &str, port: u16, pt: u8, extra: &[u8]) -> String {
        match kind {
            0 => format!("o={tok} 0 0 IN IP4 h"),
            1 => format!("c=IN IP4 {tok}"),
            2 => format!("m=audio {port} RTP/AVP {pt}"),
            3 => {
                let mut l = format!("m=audio {port} RTP/AVP {pt}");
                for e in extra {
                    l.push(' ');
                    l.push_str(&e.to_string());
                }
                l
            }
            4 => "v=0".to_owned(),
            5 => "a=ptime:20".to_owned(),
            6 => "m=audio junk RTP/AVP 0".to_owned(),
            7 => "o=".to_owned(),
            _ => tok.to_owned(), // free-form token line, no prefix
        }
    }

    proptest! {
        /// Build → parse round-trips exactly, through both the owned
        /// parser and the wire view, and the analytic length is exact.
        #[test]
        fn build_parse_round_trip(
            user in "[a-z0-9.@-]{1,12}",
            conn in "[a-z0-9.@-]{1,12}",
            port in 0u16..=u16::MAX,
            alaw in any::<bool>(),
        ) {
            let codec = if alaw { SdpCodec::Pcma } else { SdpCodec::Pcmu };
            let sdp = SessionDescription::new(&user, &conn, port, codec);
            let body = sdp.to_body();
            prop_assert_eq!(body.len(), body_len(&user, &conn, port, codec));
            let reparsed = SessionDescription::parse(&body);
            prop_assert_eq!(reparsed.as_ref(), Some(&sdp));
            let v = SdpView::parse(&body).unwrap();
            prop_assert_eq!(v.origin_user(), Some(user.as_str()));
            prop_assert_eq!(v.connection(), Some(conn.as_str()));
            prop_assert_eq!(v.audio_port(), Some(port));
            prop_assert_eq!(v.codec(), Some(codec));
        }

        /// On arbitrary line soups — reordered lines, unknown payload
        /// types, junk bytes — the view and the owned parser agree
        /// field-for-field and nothing panics.
        #[test]
        fn view_agrees_with_owned_parse_on_generated_bodies(
            draws in proptest::collection::vec(
                (
                    0u8..9,
                    "[a-z0-9.@-]{1,8}",
                    0u16..=u16::MAX,
                    any::<u8>(),
                    proptest::collection::vec(any::<u8>(), 0..3),
                ),
                0..8,
            ),
            junk in proptest::collection::vec(any::<u8>(), 0..16),
        ) {
            let mut body = Vec::new();
            for (kind, tok, port, pt, extra) in &draws {
                body.extend_from_slice(render_line(*kind, tok, *port, *pt, extra).as_bytes());
                body.extend_from_slice(b"\r\n");
            }
            body.extend_from_slice(&junk);
            let owned = SessionDescription::parse(&body);
            match SdpView::parse(&body) {
                None => prop_assert!(owned.is_none()),
                Some(v) => {
                    let viewed = v.to_session();
                    prop_assert_eq!(&owned, &viewed);
                    if let Some(s) = owned {
                        prop_assert_eq!(v.origin_user().unwrap_or(""), s.origin_user);
                        prop_assert_eq!(v.connection().unwrap_or(""), s.connection);
                        prop_assert_eq!(v.audio_port(), Some(s.audio_port));
                        prop_assert_eq!(v.codec(), Some(s.codec));
                        let mut atoms = AtomTable::new();
                        let sum = v.summarize(&mut atoms).unwrap();
                        prop_assert_eq!(sum.audio_port, s.audio_port);
                        prop_assert_eq!(sum.codec, s.codec);
                    }
                }
            }
        }
    }
}
