//! SIP response status codes.

use serde::{Deserialize, Serialize};

/// A three-digit SIP status code.
///
/// The constants cover every code the evaluation touches (the paper's
/// Table I accounts 100 Trying, 180 Ringing, 200 OK and the error classes);
/// arbitrary codes are representable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct StatusCode(pub u16);

impl StatusCode {
    /// 100 Trying.
    pub const TRYING: StatusCode = StatusCode(100);
    /// 180 Ringing.
    pub const RINGING: StatusCode = StatusCode(180);
    /// 183 Session Progress.
    pub const SESSION_PROGRESS: StatusCode = StatusCode(183);
    /// 200 OK.
    pub const OK: StatusCode = StatusCode(200);
    /// 400 Bad Request.
    pub const BAD_REQUEST: StatusCode = StatusCode(400);
    /// 401 Unauthorized.
    pub const UNAUTHORIZED: StatusCode = StatusCode(401);
    /// 403 Forbidden.
    pub const FORBIDDEN: StatusCode = StatusCode(403);
    /// 404 Not Found.
    pub const NOT_FOUND: StatusCode = StatusCode(404);
    /// 408 Request Timeout.
    pub const REQUEST_TIMEOUT: StatusCode = StatusCode(408);
    /// 486 Busy Here — what a callee at capacity answers.
    pub const BUSY_HERE: StatusCode = StatusCode(486);
    /// 487 Request Terminated (answered to a CANCELled INVITE).
    pub const REQUEST_TERMINATED: StatusCode = StatusCode(487);
    /// 500 Server Internal Error.
    pub const SERVER_ERROR: StatusCode = StatusCode(500);
    /// 503 Service Unavailable — what an overloaded PBX answers.
    pub const SERVICE_UNAVAILABLE: StatusCode = StatusCode(503);

    /// Provisional (1xx) responses do not end a transaction.
    #[must_use]
    pub fn is_provisional(self) -> bool {
        (100..200).contains(&self.0)
    }

    /// Final responses (≥ 200) complete a transaction.
    #[must_use]
    pub fn is_final(self) -> bool {
        self.0 >= 200
    }

    /// 2xx success.
    #[must_use]
    pub fn is_success(self) -> bool {
        (200..300).contains(&self.0)
    }

    /// 4xx/5xx/6xx failure.
    #[must_use]
    pub fn is_error(self) -> bool {
        self.0 >= 400
    }

    /// The canonical reason phrase.
    #[must_use]
    pub fn reason_phrase(self) -> &'static str {
        match self.0 {
            100 => "Trying",
            180 => "Ringing",
            183 => "Session Progress",
            200 => "OK",
            400 => "Bad Request",
            401 => "Unauthorized",
            403 => "Forbidden",
            404 => "Not Found",
            408 => "Request Timeout",
            486 => "Busy Here",
            487 => "Request Terminated",
            500 => "Server Internal Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }
}

impl core::fmt::Display for StatusCode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{} {}", self.0, self.reason_phrase())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert!(StatusCode::TRYING.is_provisional());
        assert!(StatusCode::RINGING.is_provisional());
        assert!(!StatusCode::OK.is_provisional());
        assert!(StatusCode::OK.is_final());
        assert!(StatusCode::OK.is_success());
        assert!(!StatusCode::OK.is_error());
        assert!(StatusCode::BUSY_HERE.is_error());
        assert!(StatusCode::BUSY_HERE.is_final());
        assert!(StatusCode::SERVICE_UNAVAILABLE.is_error());
    }

    #[test]
    fn reason_phrases() {
        assert_eq!(StatusCode::OK.to_string(), "200 OK");
        assert_eq!(StatusCode::BUSY_HERE.to_string(), "486 Busy Here");
        assert_eq!(StatusCode(599).reason_phrase(), "Unknown");
    }

    #[test]
    fn ordering_follows_numeric_code() {
        assert!(StatusCode::TRYING < StatusCode::OK);
        assert!(StatusCode::OK < StatusCode::BUSY_HERE);
    }
}
