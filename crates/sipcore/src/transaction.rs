//! SIP transaction state machines (RFC 3261 §17).
//!
//! Transactions pair a request with its responses, absorb retransmissions,
//! and drive retransmission timers over unreliable (UDP) transport — the
//! transport used throughout the paper's testbed. Four machines exist:
//!
//! * INVITE client (§17.1.1) — timers A (retransmit), B (timeout),
//!   D (response absorption);
//! * non-INVITE client (§17.1.2) — timers E, F, K;
//! * INVITE server (§17.2.1) — timers G, H, I;
//! * non-INVITE server (§17.2.2) — timer J.
//!
//! The machines are **pure**: inputs are messages and timer firings, outputs
//! are [`TxAction`] lists. The host (simulated endpoint or PBX) owns actual
//! timer scheduling, so the same code runs under the DES and in unit tests
//! with no clock at all.

use crate::message::{Request, Response};
use core::time::Duration;
use serde::{Deserialize, Serialize};

/// RFC 3261 timer base values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimerConfig {
    /// RTT estimate; retransmission base (default 500 ms).
    pub t1: Duration,
    /// Retransmission cap for non-INVITE (default 4 s).
    pub t2: Duration,
    /// Maximum lifetime of a message in the network (default 5 s).
    pub t4: Duration,
}

impl Default for TimerConfig {
    fn default() -> Self {
        TimerConfig {
            t1: Duration::from_millis(500),
            t2: Duration::from_secs(4),
            t4: Duration::from_secs(5),
        }
    }
}

/// Which logical timer fired (names follow RFC 3261 Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TimerKind {
    /// INVITE client retransmission.
    A,
    /// INVITE client timeout.
    B,
    /// INVITE client response absorption after final.
    D,
    /// Non-INVITE client retransmission.
    E,
    /// Non-INVITE client timeout.
    F,
    /// INVITE server response retransmission.
    G,
    /// INVITE server ACK-wait timeout.
    H,
    /// INVITE server confirmed-state absorption.
    I,
    /// Non-INVITE server completed-state absorption.
    J,
    /// Non-INVITE client completed-state absorption.
    K,
}

/// Why a transaction terminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TxOutcome {
    /// Completed its job normally.
    Normal,
    /// No response / no ACK arrived in time.
    Timeout,
}

/// An instruction emitted by a transaction for its host to carry out.
#[derive(Debug, Clone, PartialEq)]
pub enum TxAction {
    /// Hand this request to the transport (initial send or retransmit).
    TransmitRequest(Request),
    /// Hand this response to the transport.
    TransmitResponse(Response),
    /// Deliver this response up to the transaction user.
    DeliverResponse(Response),
    /// Start (or restart) a timer of this kind after the given delay.
    SetTimer(TimerKind, Duration),
    /// The transaction is finished; the host should drop it.
    Terminated(TxOutcome),
}

// ---------------------------------------------------------------------------
// INVITE client transaction (§17.1.1)
// ---------------------------------------------------------------------------

/// INVITE client transaction states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InviteClientState {
    /// INVITE sent, nothing heard.
    Calling,
    /// Provisional received.
    Proceeding,
    /// Non-2xx final received, absorbing retransmits.
    Completed,
    /// Done.
    Terminated,
}

/// INVITE client transaction.
#[derive(Debug, Clone)]
pub struct InviteClientTx {
    /// Current state.
    pub state: InviteClientState,
    request: Request,
    ack_template: Option<Request>,
    retransmit_interval: Duration,
}

impl InviteClientTx {
    /// Create the transaction and emit the initial send + timers A and B.
    #[must_use]
    pub fn new(request: Request, cfg: TimerConfig) -> (Self, Vec<TxAction>) {
        let tx = InviteClientTx {
            state: InviteClientState::Calling,
            request: request.clone(),
            ack_template: None,
            retransmit_interval: cfg.t1,
        };
        let actions = vec![
            TxAction::TransmitRequest(request),
            TxAction::SetTimer(TimerKind::A, cfg.t1),
            TxAction::SetTimer(TimerKind::B, cfg.t1 * 64),
        ];
        (tx, actions)
    }

    /// A response matching this transaction arrived.
    pub fn on_response(
        &mut self,
        resp: Response,
        ack_builder: impl Fn(&Request, &Response) -> Request,
    ) -> Vec<TxAction> {
        match self.state {
            InviteClientState::Calling | InviteClientState::Proceeding => {
                if resp.status.is_provisional() {
                    self.state = InviteClientState::Proceeding;
                    vec![TxAction::DeliverResponse(resp)]
                } else if resp.status.is_success() {
                    // 2xx: the TU ACKs directly (three-way handshake ends the
                    // transaction immediately).
                    self.state = InviteClientState::Terminated;
                    vec![
                        TxAction::DeliverResponse(resp),
                        TxAction::Terminated(TxOutcome::Normal),
                    ]
                } else {
                    // Non-2xx final: the transaction ACKs and lingers in
                    // Completed to absorb response retransmissions.
                    let ack = ack_builder(&self.request, &resp);
                    self.ack_template = Some(ack.clone());
                    self.state = InviteClientState::Completed;
                    vec![
                        TxAction::DeliverResponse(resp),
                        TxAction::TransmitRequest(ack),
                        TxAction::SetTimer(TimerKind::D, Duration::from_secs(32)),
                    ]
                }
            }
            InviteClientState::Completed => {
                // Retransmitted final response: re-ACK, do not deliver again.
                if resp.status.is_final() {
                    match &self.ack_template {
                        Some(ack) => vec![TxAction::TransmitRequest(ack.clone())],
                        None => vec![],
                    }
                } else {
                    vec![]
                }
            }
            InviteClientState::Terminated => vec![],
        }
    }

    /// A timer fired.
    pub fn on_timer(&mut self, kind: TimerKind) -> Vec<TxAction> {
        match (self.state, kind) {
            (InviteClientState::Calling, TimerKind::A) => {
                self.retransmit_interval *= 2;
                vec![
                    TxAction::TransmitRequest(self.request.clone()),
                    TxAction::SetTimer(TimerKind::A, self.retransmit_interval),
                ]
            }
            (InviteClientState::Calling | InviteClientState::Proceeding, TimerKind::B) => {
                self.state = InviteClientState::Terminated;
                vec![TxAction::Terminated(TxOutcome::Timeout)]
            }
            (InviteClientState::Completed, TimerKind::D) => {
                self.state = InviteClientState::Terminated;
                vec![TxAction::Terminated(TxOutcome::Normal)]
            }
            _ => vec![], // stale timer for a state we've left
        }
    }
}

// ---------------------------------------------------------------------------
// Non-INVITE client transaction (§17.1.2)
// ---------------------------------------------------------------------------

/// Non-INVITE client transaction states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClientState {
    /// Request sent.
    Trying,
    /// Provisional received.
    Proceeding,
    /// Final received, absorbing retransmits.
    Completed,
    /// Done.
    Terminated,
}

/// Non-INVITE client transaction (BYE, REGISTER, OPTIONS, CANCEL).
#[derive(Debug, Clone)]
pub struct ClientTx {
    /// Current state.
    pub state: ClientState,
    cfg: TimerConfig,
    request: Request,
    retransmit_interval: Duration,
}

impl ClientTx {
    /// Create the transaction and emit the initial send + timers E and F.
    #[must_use]
    pub fn new(request: Request, cfg: TimerConfig) -> (Self, Vec<TxAction>) {
        let tx = ClientTx {
            state: ClientState::Trying,
            cfg,
            request: request.clone(),
            retransmit_interval: cfg.t1,
        };
        let actions = vec![
            TxAction::TransmitRequest(request),
            TxAction::SetTimer(TimerKind::E, cfg.t1),
            TxAction::SetTimer(TimerKind::F, cfg.t1 * 64),
        ];
        (tx, actions)
    }

    /// A response matching this transaction arrived.
    pub fn on_response(&mut self, resp: Response) -> Vec<TxAction> {
        match self.state {
            ClientState::Trying | ClientState::Proceeding => {
                if resp.status.is_provisional() {
                    self.state = ClientState::Proceeding;
                    vec![TxAction::DeliverResponse(resp)]
                } else {
                    self.state = ClientState::Completed;
                    vec![
                        TxAction::DeliverResponse(resp),
                        TxAction::SetTimer(TimerKind::K, self.cfg.t4),
                    ]
                }
            }
            ClientState::Completed | ClientState::Terminated => vec![],
        }
    }

    /// A timer fired.
    pub fn on_timer(&mut self, kind: TimerKind) -> Vec<TxAction> {
        match (self.state, kind) {
            (ClientState::Trying | ClientState::Proceeding, TimerKind::E) => {
                self.retransmit_interval = (self.retransmit_interval * 2).min(self.cfg.t2);
                vec![
                    TxAction::TransmitRequest(self.request.clone()),
                    TxAction::SetTimer(TimerKind::E, self.retransmit_interval),
                ]
            }
            (ClientState::Trying | ClientState::Proceeding, TimerKind::F) => {
                self.state = ClientState::Terminated;
                vec![TxAction::Terminated(TxOutcome::Timeout)]
            }
            (ClientState::Completed, TimerKind::K) => {
                self.state = ClientState::Terminated;
                vec![TxAction::Terminated(TxOutcome::Normal)]
            }
            _ => vec![],
        }
    }
}

// ---------------------------------------------------------------------------
// INVITE server transaction (§17.2.1)
// ---------------------------------------------------------------------------

/// INVITE server transaction states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InviteServerState {
    /// INVITE received, sending provisionals.
    Proceeding,
    /// Non-2xx final sent, waiting for ACK.
    Completed,
    /// ACK received, absorbing stray ACKs.
    Confirmed,
    /// Done.
    Terminated,
}

/// INVITE server transaction.
#[derive(Debug, Clone)]
pub struct InviteServerTx {
    /// Current state.
    pub state: InviteServerState,
    cfg: TimerConfig,
    last_response: Option<Response>,
    retransmit_interval: Duration,
}

impl InviteServerTx {
    /// Create on receipt of an INVITE. The TU is expected to respond (the
    /// PBX answers 100 Trying at once); the transaction itself emits
    /// nothing yet.
    #[must_use]
    pub fn new(cfg: TimerConfig) -> Self {
        InviteServerTx {
            state: InviteServerState::Proceeding,
            cfg,
            last_response: None,
            retransmit_interval: cfg.t1,
        }
    }

    /// A retransmitted INVITE arrived: replay the latest response, absorb.
    pub fn on_retransmit(&mut self) -> Vec<TxAction> {
        match self.state {
            InviteServerState::Proceeding | InviteServerState::Completed => {
                match &self.last_response {
                    Some(r) => vec![TxAction::TransmitResponse(r.clone())],
                    None => vec![],
                }
            }
            _ => vec![],
        }
    }

    /// The TU wants to send a response.
    pub fn send_response(&mut self, resp: Response) -> Vec<TxAction> {
        match self.state {
            InviteServerState::Proceeding => {
                self.last_response = Some(resp.clone());
                if resp.status.is_provisional() {
                    vec![TxAction::TransmitResponse(resp)]
                } else if resp.status.is_success() {
                    // 2xx: transaction terminates immediately; the TU owns
                    // 2xx retransmission until ACK (we rely on the dialog
                    // layer, as real stacks do for the common case).
                    self.state = InviteServerState::Terminated;
                    vec![
                        TxAction::TransmitResponse(resp),
                        TxAction::Terminated(TxOutcome::Normal),
                    ]
                } else {
                    self.state = InviteServerState::Completed;
                    vec![
                        TxAction::TransmitResponse(resp),
                        TxAction::SetTimer(TimerKind::G, self.cfg.t1),
                        TxAction::SetTimer(TimerKind::H, self.cfg.t1 * 64),
                    ]
                }
            }
            _ => vec![], // response after final is a TU bug; absorb
        }
    }

    /// An ACK matching this transaction arrived.
    pub fn on_ack(&mut self) -> Vec<TxAction> {
        match self.state {
            InviteServerState::Completed => {
                self.state = InviteServerState::Confirmed;
                vec![TxAction::SetTimer(TimerKind::I, self.cfg.t4)]
            }
            _ => vec![],
        }
    }

    /// A timer fired.
    pub fn on_timer(&mut self, kind: TimerKind) -> Vec<TxAction> {
        match (self.state, kind) {
            (InviteServerState::Completed, TimerKind::G) => {
                self.retransmit_interval = (self.retransmit_interval * 2).min(self.cfg.t2);
                let mut acts = Vec::with_capacity(2);
                if let Some(r) = &self.last_response {
                    acts.push(TxAction::TransmitResponse(r.clone()));
                }
                acts.push(TxAction::SetTimer(TimerKind::G, self.retransmit_interval));
                acts
            }
            (InviteServerState::Completed, TimerKind::H) => {
                self.state = InviteServerState::Terminated;
                vec![TxAction::Terminated(TxOutcome::Timeout)]
            }
            (InviteServerState::Confirmed, TimerKind::I) => {
                self.state = InviteServerState::Terminated;
                vec![TxAction::Terminated(TxOutcome::Normal)]
            }
            _ => vec![],
        }
    }
}

// ---------------------------------------------------------------------------
// Non-INVITE server transaction (§17.2.2)
// ---------------------------------------------------------------------------

/// Non-INVITE server transaction states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServerState {
    /// Request received, nothing sent.
    Trying,
    /// Provisional sent.
    Proceeding,
    /// Final sent, absorbing request retransmits.
    Completed,
    /// Done.
    Terminated,
}

/// Non-INVITE server transaction.
#[derive(Debug, Clone)]
pub struct ServerTx {
    /// Current state.
    pub state: ServerState,
    cfg: TimerConfig,
    last_response: Option<Response>,
}

impl ServerTx {
    /// Create on receipt of a non-INVITE request.
    #[must_use]
    pub fn new(cfg: TimerConfig) -> Self {
        ServerTx {
            state: ServerState::Trying,
            cfg,
            last_response: None,
        }
    }

    /// A retransmitted request arrived.
    pub fn on_retransmit(&mut self) -> Vec<TxAction> {
        match self.state {
            ServerState::Proceeding | ServerState::Completed => match &self.last_response {
                Some(r) => vec![TxAction::TransmitResponse(r.clone())],
                None => vec![],
            },
            // In Trying nothing has been sent yet: absorb silently.
            _ => vec![],
        }
    }

    /// The TU wants to send a response.
    pub fn send_response(&mut self, resp: Response) -> Vec<TxAction> {
        match self.state {
            ServerState::Trying | ServerState::Proceeding => {
                self.last_response = Some(resp.clone());
                if resp.status.is_provisional() {
                    self.state = ServerState::Proceeding;
                    vec![TxAction::TransmitResponse(resp)]
                } else {
                    self.state = ServerState::Completed;
                    vec![
                        TxAction::TransmitResponse(resp),
                        TxAction::SetTimer(TimerKind::J, self.cfg.t1 * 64),
                    ]
                }
            }
            _ => vec![],
        }
    }

    /// A timer fired.
    pub fn on_timer(&mut self, kind: TimerKind) -> Vec<TxAction> {
        match (self.state, kind) {
            (ServerState::Completed, TimerKind::J) => {
                self.state = ServerState::Terminated;
                vec![TxAction::Terminated(TxOutcome::Normal)]
            }
            _ => vec![],
        }
    }
}

/// Build the ACK for a **non-2xx** final response per RFC 3261 §17.1.1.3:
/// same Request-URI/Call-ID/From/CSeq-number as the INVITE, To copied from
/// the response (it carries the tag), single Via copied from the INVITE.
#[must_use]
pub fn build_non2xx_ack(invite: &Request, resp: &Response) -> Request {
    use crate::headers::HeaderName;
    use crate::method::Method;
    let mut ack = Request::new(Method::Ack, invite.uri.clone());
    if let Some(via) = invite.headers.get(&HeaderName::Via) {
        ack.headers.push(HeaderName::Via, via);
    }
    if let Some(from) = invite.headers.get(&HeaderName::From) {
        ack.headers.push(HeaderName::From, from);
    }
    if let Some(to) = resp.headers.get(&HeaderName::To) {
        ack.headers.push(HeaderName::To, to);
    }
    if let Some(cid) = invite.call_id() {
        ack.headers.push(HeaderName::CallId, cid);
    }
    if let Some(n) = invite.cseq_number() {
        ack.headers.push(HeaderName::CSeq, format!("{n} ACK"));
    }
    ack.headers.set(HeaderName::ContentLength, "0");
    ack
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::headers::HeaderName;
    use crate::message::format_via;
    use crate::method::Method;
    use crate::status::StatusCode;
    use crate::uri::SipUri;

    fn cfg() -> TimerConfig {
        TimerConfig::default()
    }

    fn invite() -> Request {
        Request::new(Method::Invite, SipUri::parse("sip:bob@pbx").unwrap())
            .header(HeaderName::Via, format_via("a", 5060, "z9hG4bKtx"))
            .header(HeaderName::From, "<sip:alice@pbx>;tag=f")
            .header(HeaderName::To, "<sip:bob@pbx>")
            .header(HeaderName::CallId, "cid-tx")
            .header(HeaderName::CSeq, "1 INVITE")
    }

    fn find_timer(actions: &[TxAction], kind: TimerKind) -> Option<Duration> {
        actions.iter().find_map(|a| match a {
            TxAction::SetTimer(k, d) if *k == kind => Some(*d),
            _ => None,
        })
    }

    fn transmitted_requests(actions: &[TxAction]) -> usize {
        actions
            .iter()
            .filter(|a| matches!(a, TxAction::TransmitRequest(_)))
            .count()
    }

    // --- INVITE client ---

    #[test]
    fn invite_client_happy_path_2xx() {
        let (mut tx, acts) = InviteClientTx::new(invite(), cfg());
        assert_eq!(transmitted_requests(&acts), 1);
        assert_eq!(
            find_timer(&acts, TimerKind::A),
            Some(Duration::from_millis(500))
        );
        assert_eq!(
            find_timer(&acts, TimerKind::B),
            Some(Duration::from_secs(32))
        );

        let ringing = invite().make_response(StatusCode::RINGING);
        let acts = tx.on_response(ringing, build_non2xx_ack);
        assert_eq!(tx.state, InviteClientState::Proceeding);
        assert!(
            matches!(acts[0], TxAction::DeliverResponse(ref r) if r.status == StatusCode::RINGING)
        );

        let ok = invite().make_response(StatusCode::OK);
        let acts = tx.on_response(ok, build_non2xx_ack);
        assert_eq!(tx.state, InviteClientState::Terminated);
        assert!(acts.contains(&TxAction::Terminated(TxOutcome::Normal)));
        // 2xx ACK is the TU's job: no TransmitRequest action.
        assert_eq!(transmitted_requests(&acts), 0);
    }

    #[test]
    fn invite_client_retransmits_with_backoff() {
        let (mut tx, _) = InviteClientTx::new(invite(), cfg());
        let a1 = tx.on_timer(TimerKind::A);
        assert_eq!(transmitted_requests(&a1), 1);
        assert_eq!(find_timer(&a1, TimerKind::A), Some(Duration::from_secs(1)));
        let a2 = tx.on_timer(TimerKind::A);
        assert_eq!(find_timer(&a2, TimerKind::A), Some(Duration::from_secs(2)));
        // Once Proceeding, timer A is stale and does nothing.
        tx.on_response(invite().make_response(StatusCode::TRYING), build_non2xx_ack);
        assert!(tx.on_timer(TimerKind::A).is_empty());
    }

    #[test]
    fn invite_client_timeout() {
        let (mut tx, _) = InviteClientTx::new(invite(), cfg());
        let acts = tx.on_timer(TimerKind::B);
        assert_eq!(tx.state, InviteClientState::Terminated);
        assert_eq!(acts, vec![TxAction::Terminated(TxOutcome::Timeout)]);
    }

    #[test]
    fn invite_client_non2xx_acks_and_absorbs() {
        let (mut tx, _) = InviteClientTx::new(invite(), cfg());
        let busy = invite().make_response(StatusCode::BUSY_HERE);
        let acts = tx.on_response(busy.clone(), build_non2xx_ack);
        assert_eq!(tx.state, InviteClientState::Completed);
        // Delivered once, ACKed, timer D armed.
        assert!(matches!(acts[0], TxAction::DeliverResponse(_)));
        let ack = acts
            .iter()
            .find_map(|a| match a {
                TxAction::TransmitRequest(r) => Some(r.clone()),
                _ => None,
            })
            .expect("ACK transmitted");
        assert_eq!(ack.method, Method::Ack);
        assert_eq!(ack.headers.get(&HeaderName::CSeq), Some("1 ACK"));
        assert!(find_timer(&acts, TimerKind::D).is_some());
        // Retransmitted 486: re-ACK only, no re-delivery.
        let acts2 = tx.on_response(busy, build_non2xx_ack);
        assert_eq!(acts2.len(), 1);
        assert!(matches!(acts2[0], TxAction::TransmitRequest(ref r) if r.method == Method::Ack));
        // Timer D terminates.
        let acts3 = tx.on_timer(TimerKind::D);
        assert!(acts3.contains(&TxAction::Terminated(TxOutcome::Normal)));
    }

    // --- non-INVITE client ---

    #[test]
    fn non_invite_client_lifecycle() {
        let bye = Request::new(Method::Bye, SipUri::parse("sip:bob@pbx").unwrap())
            .header(HeaderName::Via, format_via("a", 5060, "z9hG4bKbye"))
            .header(HeaderName::CSeq, "2 BYE")
            .header(HeaderName::CallId, "cid-tx");
        let (mut tx, acts) = ClientTx::new(bye.clone(), cfg());
        assert_eq!(transmitted_requests(&acts), 1);
        assert!(find_timer(&acts, TimerKind::E).is_some());
        assert!(find_timer(&acts, TimerKind::F).is_some());

        let ok = bye.make_response(StatusCode::OK);
        let acts = tx.on_response(ok.clone());
        assert_eq!(tx.state, ClientState::Completed);
        assert!(find_timer(&acts, TimerKind::K).is_some());
        // Retransmitted response absorbed.
        assert!(tx.on_response(ok).is_empty());
        let acts = tx.on_timer(TimerKind::K);
        assert!(acts.contains(&TxAction::Terminated(TxOutcome::Normal)));
    }

    #[test]
    fn non_invite_client_backoff_caps_at_t2() {
        let bye = Request::new(Method::Bye, SipUri::parse("sip:bob@pbx").unwrap());
        let (mut tx, _) = ClientTx::new(bye, cfg());
        let mut last = Duration::ZERO;
        for _ in 0..8 {
            let acts = tx.on_timer(TimerKind::E);
            last = find_timer(&acts, TimerKind::E).unwrap();
        }
        assert_eq!(last, Duration::from_secs(4), "capped at T2");
    }

    #[test]
    fn non_invite_client_timeout_and_provisional() {
        let reg = Request::new(Method::Register, SipUri::parse("sip:pbx").unwrap());
        let (mut tx, _) = ClientTx::new(reg.clone(), cfg());
        let acts = tx.on_response(reg.make_response(StatusCode::TRYING));
        assert_eq!(tx.state, ClientState::Proceeding);
        assert!(matches!(acts[0], TxAction::DeliverResponse(_)));
        let acts = tx.on_timer(TimerKind::F);
        assert_eq!(acts, vec![TxAction::Terminated(TxOutcome::Timeout)]);
    }

    // --- INVITE server ---

    #[test]
    fn invite_server_2xx_terminates_immediately() {
        let mut tx = InviteServerTx::new(cfg());
        let acts = tx.send_response(invite().make_response(StatusCode::TRYING));
        assert_eq!(acts.len(), 1);
        assert!(
            matches!(acts[0], TxAction::TransmitResponse(ref r) if r.status == StatusCode::TRYING)
        );
        let acts = tx.send_response(invite().make_response(StatusCode::OK));
        assert_eq!(tx.state, InviteServerState::Terminated);
        assert!(acts.contains(&TxAction::Terminated(TxOutcome::Normal)));
    }

    #[test]
    fn invite_server_non2xx_waits_for_ack() {
        let mut tx = InviteServerTx::new(cfg());
        let acts = tx.send_response(invite().make_response(StatusCode::BUSY_HERE));
        assert_eq!(tx.state, InviteServerState::Completed);
        assert!(find_timer(&acts, TimerKind::G).is_some());
        assert!(find_timer(&acts, TimerKind::H).is_some());
        // Timer G retransmits the stored response with backoff.
        let g = tx.on_timer(TimerKind::G);
        assert!(
            matches!(g[0], TxAction::TransmitResponse(ref r) if r.status == StatusCode::BUSY_HERE)
        );
        assert_eq!(find_timer(&g, TimerKind::G), Some(Duration::from_secs(1)));
        // ACK confirms.
        let acts = tx.on_ack();
        assert_eq!(tx.state, InviteServerState::Confirmed);
        assert!(find_timer(&acts, TimerKind::I).is_some());
        // Stray ACK absorbed; timer I terminates.
        assert!(tx.on_ack().is_empty());
        let acts = tx.on_timer(TimerKind::I);
        assert!(acts.contains(&TxAction::Terminated(TxOutcome::Normal)));
    }

    #[test]
    fn invite_server_ack_timeout() {
        let mut tx = InviteServerTx::new(cfg());
        tx.send_response(invite().make_response(StatusCode::SERVICE_UNAVAILABLE));
        let acts = tx.on_timer(TimerKind::H);
        assert_eq!(tx.state, InviteServerState::Terminated);
        assert_eq!(acts, vec![TxAction::Terminated(TxOutcome::Timeout)]);
    }

    #[test]
    fn invite_server_retransmit_replays_last_response() {
        let mut tx = InviteServerTx::new(cfg());
        assert!(tx.on_retransmit().is_empty(), "nothing sent yet");
        tx.send_response(invite().make_response(StatusCode::TRYING));
        let acts = tx.on_retransmit();
        assert!(
            matches!(acts[0], TxAction::TransmitResponse(ref r) if r.status == StatusCode::TRYING)
        );
    }

    // --- non-INVITE server ---

    #[test]
    fn non_invite_server_lifecycle() {
        let mut tx = ServerTx::new(cfg());
        assert!(tx.on_retransmit().is_empty(), "Trying absorbs silently");
        let bye = Request::new(Method::Bye, SipUri::parse("sip:b@h").unwrap());
        let acts = tx.send_response(bye.make_response(StatusCode::OK));
        assert_eq!(tx.state, ServerState::Completed);
        assert!(find_timer(&acts, TimerKind::J).is_some());
        // Retransmitted BYE: replay the 200.
        let acts = tx.on_retransmit();
        assert!(matches!(acts[0], TxAction::TransmitResponse(ref r) if r.status == StatusCode::OK));
        // Late TU response is absorbed.
        assert!(tx
            .send_response(bye.make_response(StatusCode::OK))
            .is_empty());
        let acts = tx.on_timer(TimerKind::J);
        assert!(acts.contains(&TxAction::Terminated(TxOutcome::Normal)));
    }

    #[test]
    fn non_invite_server_provisional_path() {
        let mut tx = ServerTx::new(cfg());
        let opt = Request::new(Method::Options, SipUri::parse("sip:h").unwrap());
        tx.send_response(opt.make_response(StatusCode::TRYING));
        assert_eq!(tx.state, ServerState::Proceeding);
        let acts = tx.on_retransmit();
        assert!(
            matches!(acts[0], TxAction::TransmitResponse(ref r) if r.status == StatusCode::TRYING)
        );
        tx.send_response(opt.make_response(StatusCode::OK));
        assert_eq!(tx.state, ServerState::Completed);
    }

    #[test]
    fn ack_builder_copies_the_right_headers() {
        let inv = invite();
        let mut resp = inv.make_response(StatusCode::BUSY_HERE);
        let to = resp.headers.get(&HeaderName::To).unwrap().to_owned();
        resp.headers
            .set(HeaderName::To, crate::headers::with_tag(&to, "remote"));
        let ack = build_non2xx_ack(&inv, &resp);
        assert_eq!(ack.method, Method::Ack);
        assert_eq!(ack.uri, inv.uri);
        assert_eq!(ack.call_id(), inv.call_id());
        assert_eq!(
            crate::headers::tag_of(ack.headers.get(&HeaderName::To).unwrap()),
            Some("remote"),
            "To tag comes from the response"
        );
        assert_eq!(
            ack.headers.get(&HeaderName::Via),
            inv.headers.get(&HeaderName::Via)
        );
    }
}
