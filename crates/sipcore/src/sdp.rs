//! Minimal SDP (Session Description Protocol) support.
//!
//! Just enough of RFC 4566 to negotiate the media session the paper uses:
//! one audio stream, G.711 μ-law (payload type 0, `PCMU/8000`), with the
//! RTP address and port of each endpoint. A-law (PT 8) is also representable
//! for the codec ablation.
//!
//! [`SessionDescription`] is the eager owned form — cold paths and tests.
//! The hot signalling path uses [`wire`]: lazy borrowed views, interned
//! `Copy` summaries, and pooled zero-allocation serialization. Both forms
//! share one parser ([`wire::SdpView`]) and one serializer
//! ([`wire::write_sdp`]), so they agree byte-for-byte by construction.

use crate::pool::BufferPool;
use serde::{Deserialize, Serialize};

pub mod wire;

/// The audio codec offered in an SDP body.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SdpCodec {
    /// G.711 μ-law, static payload type 0.
    Pcmu,
    /// G.711 A-law, static payload type 8.
    Pcma,
}

impl SdpCodec {
    /// Static RTP payload type number.
    #[must_use]
    pub fn payload_type(self) -> u8 {
        match self {
            SdpCodec::Pcmu => 0,
            SdpCodec::Pcma => 8,
        }
    }

    /// rtpmap encoding name.
    #[must_use]
    pub fn encoding_name(self) -> &'static str {
        match self {
            SdpCodec::Pcmu => "PCMU",
            SdpCodec::Pcma => "PCMA",
        }
    }

    /// From a payload type number.
    #[must_use]
    pub fn from_payload_type(pt: u8) -> Option<SdpCodec> {
        match pt {
            0 => Some(SdpCodec::Pcmu),
            8 => Some(SdpCodec::Pcma),
            _ => None,
        }
    }
}

/// A parsed/built session description for one audio stream.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionDescription {
    /// Origin username field (`o=`).
    pub origin_user: String,
    /// Connection address (`c=IN IP4 <addr>`).
    pub connection: String,
    /// Audio media port (`m=audio <port> ...`).
    pub audio_port: u16,
    /// Offered codec.
    pub codec: SdpCodec,
}

impl SessionDescription {
    /// Build an offer/answer for an endpoint.
    #[must_use]
    pub fn new(origin_user: &str, connection: &str, audio_port: u16, codec: SdpCodec) -> Self {
        SessionDescription {
            origin_user: origin_user.to_owned(),
            connection: connection.to_owned(),
            audio_port,
            codec,
        }
    }

    /// Serialize to SDP text (CRLF line endings). Allocates exactly once
    /// (the returned buffer, sized by [`wire::body_len`]).
    #[must_use]
    pub fn to_body(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(wire::body_len(
            &self.origin_user,
            &self.connection,
            self.audio_port,
            self.codec,
        ));
        wire::write_sdp(
            &mut out,
            &self.origin_user,
            &self.connection,
            self.audio_port,
            self.codec,
        );
        out
    }

    /// Serialize into a pooled buffer — byte-identical to
    /// [`Self::to_body`] but allocation-free once the pool is warm.
    /// Release the buffer back with [`BufferPool::release`] after use.
    #[must_use]
    pub fn to_body_into(&self, pool: &mut BufferPool) -> Vec<u8> {
        let mut out = pool.acquire();
        out.reserve(wire::body_len(
            &self.origin_user,
            &self.connection,
            self.audio_port,
            self.codec,
        ));
        wire::write_sdp(
            &mut out,
            &self.origin_user,
            &self.connection,
            self.audio_port,
            self.codec,
        );
        out
    }

    /// Parse an SDP body produced by [`Self::to_body`] (or similar simple
    /// descriptions). Returns `None` if no usable audio stream is found.
    ///
    /// Tolerant, byte-line-wise: a malformed or non-UTF-8 line never
    /// poisons the rest of the body; for each field the first line that
    /// yields a usable value wins. Delegates to [`wire::SdpView`], so
    /// the owned parse and the zero-allocation view agree by
    /// construction (a property test in [`wire`] pins this).
    #[must_use]
    pub fn parse(body: &[u8]) -> Option<SessionDescription> {
        wire::SdpView::parse(body)?.to_session()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_parse_round_trip() {
        let sdp = SessionDescription::new("sipp", "10.0.0.2", 6000, SdpCodec::Pcmu);
        let body = sdp.to_body();
        let text = String::from_utf8(body.clone()).unwrap();
        assert!(text.contains("m=audio 6000 RTP/AVP 0\r\n"));
        assert!(text.contains("a=rtpmap:0 PCMU/8000\r\n"));
        let back = SessionDescription::parse(&body).unwrap();
        assert_eq!(back, sdp);
    }

    #[test]
    fn alaw_payload_type() {
        let sdp = SessionDescription::new("x", "10.0.0.3", 7000, SdpCodec::Pcma);
        let body = sdp.to_body();
        let back = SessionDescription::parse(&body).unwrap();
        assert_eq!(back.codec, SdpCodec::Pcma);
        assert_eq!(back.codec.payload_type(), 8);
    }

    #[test]
    fn parse_rejects_missing_media() {
        assert!(SessionDescription::parse(b"v=0\r\ns=x\r\n").is_none());
        assert!(SessionDescription::parse(b"m=audio notaport RTP/AVP 0\r\n").is_none());
        // Unknown codec payload type.
        assert!(
            SessionDescription::parse(b"c=IN IP4 1.2.3.4\r\nm=audio 5000 RTP/AVP 96\r\n").is_none()
        );
        assert!(SessionDescription::parse(&[0xFF, 0xFE]).is_none());
    }

    #[test]
    fn parse_tolerates_garbage_bytes() {
        // Non-UTF-8 garbage alone: no usable stream, clean None — never a
        // panic. Garbage mixed into an otherwise valid body: the valid
        // lines still parse.
        let garbage: Vec<u8> = (0u8..=255).rev().collect();
        assert!(SessionDescription::parse(&garbage).is_none());

        let mut body = garbage.clone();
        body.push(b'\n');
        body.extend_from_slice(b"o=alice 0 0 IN IP4 h\r\nc=IN IP4 10.0.0.7\r\n");
        body.extend_from_slice(&[0x80, 0x81, b'\n']);
        body.extend_from_slice(b"m=audio 6000 RTP/AVP 0\r\n");
        let s = SessionDescription::parse(&body).expect("valid lines survive garbage");
        assert_eq!(s.origin_user, "alice");
        assert_eq!(s.connection, "10.0.0.7");
        assert_eq!(s.audio_port, 6000);
        assert_eq!(s.codec, SdpCodec::Pcmu);
    }

    #[test]
    fn pooled_body_build_matches_eager() {
        let sdp = SessionDescription::new("sipp", "10.0.0.2", 6000, SdpCodec::Pcmu);
        let mut pool = BufferPool::default();
        let warm = sdp.to_body_into(&mut pool);
        pool.release(warm);
        let pooled = sdp.to_body_into(&mut pool);
        assert_eq!(pooled, sdp.to_body());
        let (acquired, reused) = pool.stats();
        assert_eq!((acquired, reused), (2, 1), "second build reused the buffer");
    }

    #[test]
    fn codec_tables() {
        assert_eq!(SdpCodec::from_payload_type(0), Some(SdpCodec::Pcmu));
        assert_eq!(SdpCodec::from_payload_type(8), Some(SdpCodec::Pcma));
        assert_eq!(SdpCodec::from_payload_type(18), None);
        assert_eq!(SdpCodec::Pcmu.encoding_name(), "PCMU");
        assert_eq!(SdpCodec::Pcma.encoding_name(), "PCMA");
    }
}
