//! Minimal SDP (Session Description Protocol) support.
//!
//! Just enough of RFC 4566 to negotiate the media session the paper uses:
//! one audio stream, G.711 μ-law (payload type 0, `PCMU/8000`), with the
//! RTP address and port of each endpoint. A-law (PT 8) is also representable
//! for the codec ablation.

use serde::{Deserialize, Serialize};

/// The audio codec offered in an SDP body.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SdpCodec {
    /// G.711 μ-law, static payload type 0.
    Pcmu,
    /// G.711 A-law, static payload type 8.
    Pcma,
}

impl SdpCodec {
    /// Static RTP payload type number.
    #[must_use]
    pub fn payload_type(self) -> u8 {
        match self {
            SdpCodec::Pcmu => 0,
            SdpCodec::Pcma => 8,
        }
    }

    /// rtpmap encoding name.
    #[must_use]
    pub fn encoding_name(self) -> &'static str {
        match self {
            SdpCodec::Pcmu => "PCMU",
            SdpCodec::Pcma => "PCMA",
        }
    }

    /// From a payload type number.
    #[must_use]
    pub fn from_payload_type(pt: u8) -> Option<SdpCodec> {
        match pt {
            0 => Some(SdpCodec::Pcmu),
            8 => Some(SdpCodec::Pcma),
            _ => None,
        }
    }
}

/// A parsed/built session description for one audio stream.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionDescription {
    /// Origin username field (`o=`).
    pub origin_user: String,
    /// Connection address (`c=IN IP4 <addr>`).
    pub connection: String,
    /// Audio media port (`m=audio <port> ...`).
    pub audio_port: u16,
    /// Offered codec.
    pub codec: SdpCodec,
}

impl SessionDescription {
    /// Build an offer/answer for an endpoint.
    #[must_use]
    pub fn new(origin_user: &str, connection: &str, audio_port: u16, codec: SdpCodec) -> Self {
        SessionDescription {
            origin_user: origin_user.to_owned(),
            connection: connection.to_owned(),
            audio_port,
            codec,
        }
    }

    /// Serialize to SDP text (CRLF line endings).
    #[must_use]
    pub fn to_body(&self) -> Vec<u8> {
        let pt = self.codec.payload_type();
        format!(
            "v=0\r\n\
             o={user} 0 0 IN IP4 {conn}\r\n\
             s=call\r\n\
             c=IN IP4 {conn}\r\n\
             t=0 0\r\n\
             m=audio {port} RTP/AVP {pt}\r\n\
             a=rtpmap:{pt} {enc}/8000\r\n\
             a=ptime:20\r\n",
            user = self.origin_user,
            conn = self.connection,
            port = self.audio_port,
            pt = pt,
            enc = self.codec.encoding_name(),
        )
        .into_bytes()
    }

    /// Parse an SDP body produced by [`Self::to_body`] (or similar simple
    /// descriptions). Returns `None` if no usable audio stream is found.
    #[must_use]
    pub fn parse(body: &[u8]) -> Option<SessionDescription> {
        let text = std::str::from_utf8(body).ok()?;
        let mut origin_user = String::new();
        let mut connection = String::new();
        let mut audio_port = None;
        let mut codec = None;
        for line in text.lines() {
            let line = line.trim_end();
            if let Some(rest) = line.strip_prefix("o=") {
                origin_user = rest.split_whitespace().next()?.to_owned();
            } else if let Some(rest) = line.strip_prefix("c=") {
                // c=IN IP4 addr
                connection = rest.split_whitespace().nth(2)?.to_owned();
            } else if let Some(rest) = line.strip_prefix("m=audio ") {
                let mut parts = rest.split_whitespace();
                audio_port = parts.next()?.parse::<u16>().ok();
                let _proto = parts.next()?;
                // First listed payload type wins.
                let pt: u8 = parts.next()?.parse().ok()?;
                codec = SdpCodec::from_payload_type(pt);
            }
        }
        Some(SessionDescription {
            origin_user,
            connection,
            audio_port: audio_port?,
            codec: codec?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_parse_round_trip() {
        let sdp = SessionDescription::new("sipp", "10.0.0.2", 6000, SdpCodec::Pcmu);
        let body = sdp.to_body();
        let text = String::from_utf8(body.clone()).unwrap();
        assert!(text.contains("m=audio 6000 RTP/AVP 0\r\n"));
        assert!(text.contains("a=rtpmap:0 PCMU/8000\r\n"));
        let back = SessionDescription::parse(&body).unwrap();
        assert_eq!(back, sdp);
    }

    #[test]
    fn alaw_payload_type() {
        let sdp = SessionDescription::new("x", "10.0.0.3", 7000, SdpCodec::Pcma);
        let body = sdp.to_body();
        let back = SessionDescription::parse(&body).unwrap();
        assert_eq!(back.codec, SdpCodec::Pcma);
        assert_eq!(back.codec.payload_type(), 8);
    }

    #[test]
    fn parse_rejects_missing_media() {
        assert!(SessionDescription::parse(b"v=0\r\ns=x\r\n").is_none());
        assert!(SessionDescription::parse(b"m=audio notaport RTP/AVP 0\r\n").is_none());
        // Unknown codec payload type.
        assert!(
            SessionDescription::parse(b"c=IN IP4 1.2.3.4\r\nm=audio 5000 RTP/AVP 96\r\n").is_none()
        );
        assert!(SessionDescription::parse(&[0xFF, 0xFE]).is_none());
    }

    #[test]
    fn codec_tables() {
        assert_eq!(SdpCodec::from_payload_type(0), Some(SdpCodec::Pcmu));
        assert_eq!(SdpCodec::from_payload_type(8), Some(SdpCodec::Pcma));
        assert_eq!(SdpCodec::from_payload_type(18), None);
        assert_eq!(SdpCodec::Pcmu.encoding_name(), "PCMU");
        assert_eq!(SdpCodec::Pcma.encoding_name(), "PCMA");
    }
}
