//! SIP dialog identification and lifecycle.
//!
//! A dialog is identified by (Call-ID, local tag, remote tag) — RFC 3261
//! §12. The evaluation uses dialogs to correlate the BYE with the INVITE
//! that created the session and to pair RTP streams with their signalling.

use crate::atoms::{Atom, AtomTable};
use crate::headers::{tag_of, HeaderName};
use crate::message::{Request, Response};
use serde::{Deserialize, Serialize};

/// Dialog identifier.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DialogId {
    /// Call-ID header value.
    pub call_id: String,
    /// Tag of this endpoint.
    pub local_tag: String,
    /// Tag of the peer (empty while half-established).
    pub remote_tag: String,
}

impl DialogId {
    /// Construct from explicit parts.
    #[must_use]
    pub fn new(call_id: &str, local_tag: &str, remote_tag: &str) -> Self {
        DialogId {
            call_id: call_id.to_owned(),
            local_tag: local_tag.to_owned(),
            remote_tag: remote_tag.to_owned(),
        }
    }

    /// Derive the dialog ID as seen by the **caller** (UAC) from a response:
    /// local = From tag, remote = To tag.
    #[must_use]
    pub fn from_response_uac(resp: &Response) -> Option<DialogId> {
        let call_id = resp.call_id()?;
        let from = resp.headers.get(&HeaderName::From)?;
        let to = resp.headers.get(&HeaderName::To)?;
        Some(DialogId {
            call_id: call_id.to_owned(),
            local_tag: tag_of(from)?.to_owned(),
            remote_tag: tag_of(to).unwrap_or("").to_owned(),
        })
    }

    /// Derive the dialog ID as seen by the **callee** (UAS) from a request:
    /// local = To tag, remote = From tag.
    #[must_use]
    pub fn from_request_uas(req: &Request) -> Option<DialogId> {
        let call_id = req.call_id()?;
        let from = req.headers.get(&HeaderName::From)?;
        let to = req.headers.get(&HeaderName::To)?;
        Some(DialogId {
            call_id: call_id.to_owned(),
            local_tag: tag_of(to).unwrap_or("").to_owned(),
            remote_tag: tag_of(from)?.to_owned(),
        })
    }
}

/// An interned dialog identifier: the (Call-ID, local tag, remote tag)
/// triple as three [`Atom`] handles. `Copy`, 12 bytes, integer hash —
/// the map-key form of [`DialogId`] for dialog tables on the signalling
/// hot path, where hashing three `String`s per lookup is measurable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DialogKey {
    /// Interned Call-ID.
    pub call_id: Atom,
    /// Interned local tag.
    pub local_tag: Atom,
    /// Interned remote tag (the empty string while half-established).
    pub remote_tag: Atom,
}

impl DialogId {
    /// Intern this identifier's parts into `atoms`, yielding the compact
    /// map-key form. Repeated calls for the same dialog allocate nothing
    /// (the strings are already in the table).
    #[must_use]
    pub fn key(&self, atoms: &mut AtomTable) -> DialogKey {
        DialogKey {
            call_id: atoms.intern(&self.call_id),
            local_tag: atoms.intern(&self.local_tag),
            remote_tag: atoms.intern(&self.remote_tag),
        }
    }
}

/// Dialog lifecycle state (RFC 3261 §12 simplified to the flows the
/// evaluation exercises).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DialogState {
    /// INVITE sent/received, no final answer yet.
    Early,
    /// 200 OK exchanged and ACKed — media flows.
    Confirmed,
    /// BYE exchanged.
    Terminated,
}

/// A tracked dialog with its sequence numbers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dialog {
    /// The dialog identifier.
    pub id: DialogId,
    /// Current state.
    pub state: DialogState,
    /// Next CSeq this side will use.
    pub local_cseq: u32,
    /// Highest CSeq seen from the peer.
    pub remote_cseq: u32,
}

impl Dialog {
    /// A fresh early dialog.
    #[must_use]
    pub fn early(id: DialogId, local_cseq: u32, remote_cseq: u32) -> Self {
        Dialog {
            id,
            state: DialogState::Early,
            local_cseq,
            remote_cseq,
        }
    }

    /// Transition to confirmed (on 200 OK / ACK).
    pub fn confirm(&mut self) {
        if self.state == DialogState::Early {
            self.state = DialogState::Confirmed;
        }
    }

    /// Transition to terminated (on BYE).
    pub fn terminate(&mut self) {
        self.state = DialogState::Terminated;
    }

    /// Allocate the next local CSeq number.
    pub fn next_cseq(&mut self) -> u32 {
        self.local_cseq += 1;
        self.local_cseq
    }

    /// Validate and record a peer CSeq; rejects regressions (out-of-order
    /// or replayed in-dialog requests).
    pub fn accept_remote_cseq(&mut self, cseq: u32) -> bool {
        if cseq > self.remote_cseq {
            self.remote_cseq = cseq;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::format_via;
    use crate::method::Method;
    use crate::status::StatusCode;
    use crate::uri::SipUri;

    fn invite() -> Request {
        Request::new(Method::Invite, SipUri::parse("sip:bob@pbx").unwrap())
            .header(HeaderName::Via, format_via("a", 5060, "z9hG4bK1"))
            .header(HeaderName::From, "<sip:alice@pbx>;tag=fromtag")
            .header(HeaderName::To, "<sip:bob@pbx>")
            .header(HeaderName::CallId, "cid-dialog")
            .header(HeaderName::CSeq, "1 INVITE")
    }

    #[test]
    fn uac_dialog_id_from_response() {
        let req = invite();
        let mut resp = req.make_response(StatusCode::OK);
        let to = resp.headers.get(&HeaderName::To).unwrap().to_owned();
        resp.headers
            .set(HeaderName::To, crate::headers::with_tag(&to, "totag"));
        let id = DialogId::from_response_uac(&resp).unwrap();
        assert_eq!(id.call_id, "cid-dialog");
        assert_eq!(id.local_tag, "fromtag");
        assert_eq!(id.remote_tag, "totag");
    }

    #[test]
    fn uas_dialog_id_from_request() {
        let req = invite();
        let id = DialogId::from_request_uas(&req).unwrap();
        assert_eq!(id.local_tag, "", "no To tag before answering");
        assert_eq!(id.remote_tag, "fromtag");
    }

    #[test]
    fn uac_and_uas_views_are_mirrored() {
        let req = invite();
        let uas = DialogId::from_request_uas(&req).unwrap();
        let mut resp = req.make_response(StatusCode::OK);
        let to = resp.headers.get(&HeaderName::To).unwrap().to_owned();
        resp.headers
            .set(HeaderName::To, crate::headers::with_tag(&to, "totag"));
        let uac = DialogId::from_response_uac(&resp).unwrap();
        assert_eq!(uac.call_id, uas.call_id);
        assert_eq!(uac.local_tag, uas.remote_tag);
    }

    #[test]
    fn missing_headers_yield_none() {
        let bare = Request::new(Method::Invite, SipUri::parse("sip:x@h").unwrap());
        assert!(DialogId::from_request_uas(&bare).is_none());
        let bare_resp = Response::new(StatusCode::OK);
        assert!(DialogId::from_response_uac(&bare_resp).is_none());
    }

    #[test]
    fn lifecycle_transitions() {
        let mut d = Dialog::early(DialogId::new("c", "l", "r"), 1, 0);
        assert_eq!(d.state, DialogState::Early);
        d.confirm();
        assert_eq!(d.state, DialogState::Confirmed);
        d.confirm(); // idempotent
        assert_eq!(d.state, DialogState::Confirmed);
        d.terminate();
        assert_eq!(d.state, DialogState::Terminated);
        // Confirm after terminate must not resurrect.
        d.confirm();
        assert_eq!(d.state, DialogState::Terminated);
    }

    #[test]
    fn interned_keys_compare_like_ids() {
        let mut atoms = AtomTable::new();
        let a = DialogId::new("c1", "alice", "bob").key(&mut atoms);
        let b = DialogId::new("c1", "alice", "bob").key(&mut atoms);
        let c = DialogId::new("c1", "bob", "alice").key(&mut atoms);
        assert_eq!(a, b, "same triple, same key");
        assert_ne!(a, c, "mirrored tags are a different dialog");
        assert_eq!(atoms.resolve(a.call_id), "c1");
        // Repeats allocate nothing new: 3 distinct strings total.
        assert_eq!(atoms.len(), 3, "c1, alice, bob — nothing interned twice");
    }

    #[test]
    fn cseq_discipline() {
        let mut d = Dialog::early(DialogId::new("c", "l", "r"), 1, 1);
        assert_eq!(d.next_cseq(), 2);
        assert_eq!(d.next_cseq(), 3);
        assert!(d.accept_remote_cseq(2));
        assert!(!d.accept_remote_cseq(2), "replay rejected");
        assert!(!d.accept_remote_cseq(1), "regression rejected");
        assert!(d.accept_remote_cseq(5));
        assert_eq!(d.remote_cseq, 5);
    }
}
