//! Lazy wire views: routing-relevant fields of a serialized SIP message
//! as borrowed `&str` slices, with no heap allocation and no full decode.
//!
//! A B2BUA relaying an in-dialog message only needs a handful of fields —
//! the start line, Call-ID, CSeq, the top Via branch, the From/To tags —
//! to match it to a transaction or dialog. [`WireMessage`] answers those
//! questions straight from the wire bytes; the eager
//! [`crate::parse::parse_message`] decode (which allocates a `String`
//! per header) is deferred until a consumer actually needs an owned
//! [`SipMessage`]. Retransmission matching in
//! [`crate::txmgr::TransactionManager::on_wire`] is the canonical user:
//! a retransmitted INVITE is absorbed and answered without ever paying
//! the full parse.
//!
//! The view applies the same wire leniencies as the eager parser (CRLF
//! or LF line endings, whitespace around the header colon, compact
//! header names), so on any buffer the parser accepts, every accessor
//! here agrees with the parsed message field-for-field — a property test
//! in `parse.rs` pins that agreement.

use crate::headers::{tag_of, HeaderName};
use crate::message::{branch_of, SipMessage, SIP_VERSION};
use crate::parse::{find_blank_line, parse_message, ParseError};

/// A borrowed, zero-allocation view over one serialized SIP message.
#[derive(Debug, Clone, Copy)]
pub struct WireMessage<'a> {
    bytes: &'a [u8],
    head: &'a str,
    body: &'a [u8],
}

impl<'a> WireMessage<'a> {
    /// Build a view over `buf`. Returns `None` when the head is not
    /// UTF-8 or the buffer is empty — the cases where no field could be
    /// answered. Malformed lines inside an otherwise-textual head do not
    /// fail construction; the affected accessors just return `None`.
    #[must_use]
    pub fn parse(buf: &'a [u8]) -> Option<WireMessage<'a>> {
        let (head_end, body_start) = find_blank_line(buf)?;
        let head = std::str::from_utf8(&buf[..head_end]).ok()?;
        Some(WireMessage {
            bytes: buf,
            head,
            body: &buf[body_start..],
        })
    }

    /// The underlying wire bytes (whole datagram).
    #[must_use]
    pub fn as_bytes(&self) -> &'a [u8] {
        self.bytes
    }

    /// The message body (bytes after the blank line).
    #[must_use]
    pub fn body(&self) -> &'a [u8] {
        self.body
    }

    fn lines(&self) -> impl Iterator<Item = &'a str> {
        self.head.split("\r\n").flat_map(|l| l.split('\n'))
    }

    /// The start line (first non-blank line), if any.
    fn start_line(&self) -> Option<&'a str> {
        self.lines().find(|l| !l.trim().is_empty())
    }

    /// Header lines: everything after the start line.
    fn header_lines(&self) -> impl Iterator<Item = &'a str> {
        let mut seen_start = false;
        self.lines().filter(move |l| {
            if seen_start {
                !l.is_empty()
            } else {
                if !l.trim().is_empty() {
                    seen_start = true;
                }
                false
            }
        })
    }

    /// True when the start line is a request line.
    #[must_use]
    pub fn is_request(&self) -> bool {
        self.start_line()
            .is_some_and(|l| !l.starts_with(SIP_VERSION))
    }

    /// Request method token (requests only).
    #[must_use]
    pub fn method_token(&self) -> Option<&'a str> {
        let line = self.start_line()?;
        if line.starts_with(SIP_VERSION) {
            return None;
        }
        line.split_whitespace().next()
    }

    /// Request-URI text (requests only).
    #[must_use]
    pub fn uri_str(&self) -> Option<&'a str> {
        let line = self.start_line()?;
        if line.starts_with(SIP_VERSION) {
            return None;
        }
        line.split_whitespace().nth(1)
    }

    /// Status code (responses only), range-checked like the eager parser.
    #[must_use]
    pub fn status_code(&self) -> Option<u16> {
        let rest = self.start_line()?.strip_prefix(SIP_VERSION)?;
        let code: u16 = rest.split_whitespace().next()?.parse().ok()?;
        (100..700).contains(&code).then_some(code)
    }

    /// First value of `name`, trimmed — the same normalization the eager
    /// parser applies. Matches canonical and compact names
    /// case-insensitively without allocating.
    #[must_use]
    pub fn header(&self, name: &HeaderName) -> Option<&'a str> {
        self.header_lines().find_map(|line| {
            let (n, v) = line.split_once(':')?;
            name.matches_wire(n.trim()).then(|| v.trim())
        })
    }

    /// Call-ID value.
    #[must_use]
    pub fn call_id(&self) -> Option<&'a str> {
        self.header(&HeaderName::CallId)
    }

    /// CSeq as (sequence number, method token).
    #[must_use]
    pub fn cseq(&self) -> Option<(u32, &'a str)> {
        let v = self.header(&HeaderName::CSeq)?;
        let mut parts = v.split_whitespace();
        let n = parts.next()?.parse().ok()?;
        Some((n, parts.next()?))
    }

    /// The `branch=` parameter of the top Via — the transaction key.
    #[must_use]
    pub fn top_via_branch(&self) -> Option<&'a str> {
        branch_of(self.header(&HeaderName::Via)?)
    }

    /// The From header's `tag=` parameter.
    #[must_use]
    pub fn from_tag(&self) -> Option<&'a str> {
        tag_of(self.header(&HeaderName::From)?)
    }

    /// The To header's `tag=` parameter (present once a dialog exists).
    #[must_use]
    pub fn to_tag(&self) -> Option<&'a str> {
        tag_of(self.header(&HeaderName::To)?)
    }

    /// Upgrade to an owned, fully parsed message (the eager path).
    pub fn to_message(&self) -> Result<SipMessage, ParseError> {
        parse_message(self.bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{format_via, Request, Response};
    use crate::method::Method;
    use crate::status::StatusCode;
    use crate::uri::SipUri;

    fn invite_wire() -> Vec<u8> {
        Request::new(Method::Invite, SipUri::parse("sip:bob@pbx:5060").unwrap())
            .header(HeaderName::Via, format_via("10.0.0.2", 5060, "z9hG4bKw1"))
            .header(HeaderName::From, "<sip:alice@pbx>;tag=fa")
            .header(HeaderName::To, "<sip:bob@pbx>")
            .header(HeaderName::CallId, "cid-wire@host")
            .header(HeaderName::CSeq, "3 INVITE")
            .with_body("application/sdp", b"v=0\r\n".to_vec())
            .to_wire()
    }

    #[test]
    fn request_fields_without_full_parse() {
        let wire = invite_wire();
        let v = WireMessage::parse(&wire).unwrap();
        assert!(v.is_request());
        assert_eq!(v.method_token(), Some("INVITE"));
        assert_eq!(v.uri_str(), Some("sip:bob@pbx:5060"));
        assert_eq!(v.status_code(), None);
        assert_eq!(v.call_id(), Some("cid-wire@host"));
        assert_eq!(v.cseq(), Some((3, "INVITE")));
        assert_eq!(v.top_via_branch(), Some("z9hG4bKw1"));
        assert_eq!(v.from_tag(), Some("fa"));
        assert_eq!(v.to_tag(), None);
        assert_eq!(v.body(), b"v=0\r\n");
    }

    #[test]
    fn response_fields() {
        let wire = Response::new(StatusCode::RINGING)
            .header(HeaderName::Via, format_via("h", 5060, "z9hG4bKr"))
            .header(HeaderName::To, "<sip:bob@pbx>;tag=tb")
            .header(HeaderName::CSeq, "1 INVITE")
            .to_wire();
        let v = WireMessage::parse(&wire).unwrap();
        assert!(!v.is_request());
        assert_eq!(v.status_code(), Some(180));
        assert_eq!(v.method_token(), None);
        assert_eq!(v.uri_str(), None);
        assert_eq!(v.cseq(), Some((1, "INVITE")));
        assert_eq!(v.to_tag(), Some("tb"));
    }

    #[test]
    fn tolerates_lf_and_compact_names_like_the_parser() {
        let text = "BYE sip:bob@pbx SIP/2.0\ni: xyz\nv : SIP/2.0/UDP h;branch=z9hG4bKc\n\n";
        let v = WireMessage::parse(text.as_bytes()).unwrap();
        assert_eq!(v.call_id(), Some("xyz"));
        assert_eq!(v.top_via_branch(), Some("z9hG4bKc"));
        assert_eq!(v.method_token(), Some("BYE"));
    }

    #[test]
    fn upgrade_agrees_with_eager_parse() {
        let wire = invite_wire();
        let v = WireMessage::parse(&wire).unwrap();
        let msg = v.to_message().unwrap();
        assert_eq!(msg, parse_message(&wire).unwrap());
    }

    #[test]
    fn non_utf8_head_is_rejected() {
        assert!(WireMessage::parse(&[0xff, 0xfe, b'\r', b'\n']).is_none());
        assert!(WireMessage::parse(b"").is_none());
    }
}
