//! Wire-format parser: bytes → [`SipMessage`].
//!
//! Accepts the RFC 3261 text format as produced by
//! [`crate::message::Request::to_wire`] / [`crate::message::Response::to_wire`],
//! plus the usual leniencies found in real traffic: LF-only line endings,
//! whitespace around the header colon, and compact header names.

use crate::headers::{HeaderMap, HeaderName};
use crate::message::{Body, Request, Response, SipMessage, SIP_VERSION};
use crate::method::Method;
use crate::status::StatusCode;
use crate::uri::SipUri;
use core::fmt;

/// Why a byte buffer failed to parse as a SIP message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The buffer is empty or all-whitespace.
    Empty,
    /// The start line is not valid UTF-8 or has the wrong shape.
    MalformedStartLine,
    /// Unknown request method token.
    UnknownMethod(String),
    /// The Request-URI failed to parse.
    BadUri,
    /// The status code is not a number in 100..=699.
    BadStatusCode,
    /// A header line has no colon.
    MalformedHeader(String),
    /// Headers are not valid UTF-8.
    NotUtf8,
    /// The Content-Length header disagrees with the actual body length.
    BodyLengthMismatch {
        /// Declared Content-Length.
        declared: usize,
        /// Bytes actually present after the blank line.
        actual: usize,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Empty => write!(f, "empty message"),
            ParseError::MalformedStartLine => write!(f, "malformed start line"),
            ParseError::UnknownMethod(m) => write!(f, "unknown method {m:?}"),
            ParseError::BadUri => write!(f, "malformed request-URI"),
            ParseError::BadStatusCode => write!(f, "malformed status code"),
            ParseError::MalformedHeader(h) => write!(f, "malformed header line {h:?}"),
            ParseError::NotUtf8 => write!(f, "message head is not UTF-8"),
            ParseError::BodyLengthMismatch { declared, actual } => {
                write!(f, "Content-Length {declared} but body has {actual} bytes")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Parse one SIP message from a byte buffer.
///
/// The buffer must contain exactly one message (datagram framing, as over
/// UDP — the transport used throughout the evaluation).
pub fn parse_message(buf: &[u8]) -> Result<SipMessage, ParseError> {
    // Locate the blank line separating head from body. Accept CRLF or LF.
    let (head_end, body_start) = find_blank_line(buf).ok_or(ParseError::Empty)?;
    let head = std::str::from_utf8(&buf[..head_end]).map_err(|_| ParseError::NotUtf8)?;
    let body = &buf[body_start..];

    let mut lines = head.split("\r\n").flat_map(|l| l.split('\n'));
    let start = loop {
        match lines.next() {
            Some(l) if l.trim().is_empty() => continue, // tolerate leading blank lines
            Some(l) => break l,
            None => return Err(ParseError::Empty),
        }
    };

    let mut headers = HeaderMap::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ParseError::MalformedHeader(line.to_owned()))?;
        let name = name.trim();
        if name.is_empty() {
            return Err(ParseError::MalformedHeader(line.to_owned()));
        }
        headers.push(HeaderName::from_wire(name), value.trim().to_owned());
    }

    // Validate declared body length when present.
    if let Some(cl) = headers.get(&HeaderName::ContentLength) {
        if let Ok(declared) = cl.parse::<usize>() {
            if declared != body.len() {
                return Err(ParseError::BodyLengthMismatch {
                    declared,
                    actual: body.len(),
                });
            }
        }
    }

    if let Some(rest) = start.strip_prefix(SIP_VERSION) {
        // Response: "SIP/2.0 200 OK"
        let rest = rest.trim_start();
        let code_txt = rest
            .split_whitespace()
            .next()
            .ok_or(ParseError::MalformedStartLine)?;
        let code: u16 = code_txt.parse().map_err(|_| ParseError::BadStatusCode)?;
        if !(100..700).contains(&code) {
            return Err(ParseError::BadStatusCode);
        }
        Ok(SipMessage::Response(Response {
            status: StatusCode(code),
            headers,
            body: Body::Bytes(body.to_vec()),
        }))
    } else {
        // Request: "INVITE sip:x SIP/2.0"
        let mut parts = start.split_whitespace();
        let method_txt = parts.next().ok_or(ParseError::MalformedStartLine)?;
        let uri_txt = parts.next().ok_or(ParseError::MalformedStartLine)?;
        let version = parts.next().ok_or(ParseError::MalformedStartLine)?;
        if version != SIP_VERSION || parts.next().is_some() {
            return Err(ParseError::MalformedStartLine);
        }
        let method = Method::from_token(method_txt)
            .ok_or_else(|| ParseError::UnknownMethod(method_txt.to_owned()))?;
        let uri = SipUri::parse(uri_txt).ok_or(ParseError::BadUri)?;
        Ok(SipMessage::Request(Request {
            method,
            uri,
            headers,
            body: Body::Bytes(body.to_vec()),
        }))
    }
}

/// Find the head/body split: returns (head_end, body_start). Shared with
/// the lazy [`crate::wire::WireMessage`] view so both framings agree.
pub(crate) fn find_blank_line(buf: &[u8]) -> Option<(usize, usize)> {
    if buf.is_empty() {
        return None;
    }
    let mut i = 0;
    while i < buf.len() {
        if buf[i..].starts_with(b"\r\n\r\n") {
            return Some((i, i + 4));
        }
        if buf[i..].starts_with(b"\n\n") {
            return Some((i, i + 2));
        }
        i += 1;
    }
    // No blank line: the whole buffer is the head, no body.
    Some((buf.len(), buf.len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::format_via;

    fn sample_invite_wire() -> Vec<u8> {
        Request::new(Method::Invite, SipUri::parse("sip:bob@pbx:5060").unwrap())
            .header(HeaderName::Via, format_via("10.0.0.2", 5060, "z9hG4bK1"))
            .header(HeaderName::From, "<sip:alice@pbx>;tag=a")
            .header(HeaderName::To, "<sip:bob@pbx>")
            .header(HeaderName::CallId, "cid@host")
            .header(HeaderName::CSeq, "1 INVITE")
            .with_body(
                "application/sdp",
                b"v=0\r\no=- 0 0 IN IP4 10.0.0.2\r\n".to_vec(),
            )
            .to_wire()
    }

    #[test]
    fn round_trip_request() {
        let wire = sample_invite_wire();
        let msg = parse_message(&wire).unwrap();
        let req = msg.as_request().unwrap();
        assert_eq!(req.method, Method::Invite);
        assert_eq!(req.uri.to_string(), "sip:bob@pbx:5060");
        assert_eq!(req.call_id(), Some("cid@host"));
        assert_eq!(
            req.body.as_bytes(),
            Some(b"v=0\r\no=- 0 0 IN IP4 10.0.0.2\r\n".as_slice())
        );
        // Serialize again: byte-identical.
        assert_eq!(req.to_wire(), wire);
    }

    #[test]
    fn round_trip_response() {
        let wire = Response::new(StatusCode::RINGING)
            .header(HeaderName::Via, format_via("h", 5060, "z9hG4bK1"))
            .header(HeaderName::CSeq, "1 INVITE")
            .header(HeaderName::ContentLength, "0")
            .to_wire();
        let msg = parse_message(&wire).unwrap();
        let resp = msg.as_response().unwrap();
        assert_eq!(resp.status, StatusCode::RINGING);
        assert_eq!(resp.cseq_method(), Some(Method::Invite));
        assert_eq!(resp.to_wire(), wire);
    }

    #[test]
    fn accepts_lf_only_and_sloppy_whitespace() {
        let text =
            "INVITE sip:bob@pbx SIP/2.0\nVia : SIP/2.0/UDP h;branch=z9hG4bKx\nCall-ID:  abc \n\n";
        let msg = parse_message(text.as_bytes()).unwrap();
        let req = msg.as_request().unwrap();
        assert_eq!(req.call_id(), Some("abc"));
        assert_eq!(req.top_via_branch(), Some("z9hG4bKx"));
    }

    #[test]
    fn accepts_compact_header_names() {
        let text = "BYE sip:bob@pbx SIP/2.0\r\ni: xyz\r\nf: <sip:a@h>;tag=1\r\n\r\n";
        let req_msg = parse_message(text.as_bytes()).unwrap();
        let req = req_msg.as_request().unwrap();
        assert_eq!(req.call_id(), Some("xyz"));
        assert_eq!(req.headers.get(&HeaderName::From), Some("<sip:a@h>;tag=1"));
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(parse_message(b""), Err(ParseError::Empty));
        assert!(matches!(
            parse_message(b"SUBSCRIBE sip:x@h SIP/2.0\r\n\r\n"),
            Err(ParseError::UnknownMethod(_))
        ));
        assert_eq!(
            parse_message(b"INVITE nota-uri SIP/2.0\r\n\r\n"),
            Err(ParseError::BadUri)
        );
        assert_eq!(
            parse_message(b"INVITE sip:x@h\r\n\r\n"),
            Err(ParseError::MalformedStartLine)
        );
        assert_eq!(
            parse_message(b"SIP/2.0 9x9 Nope\r\n\r\n"),
            Err(ParseError::BadStatusCode)
        );
        assert_eq!(
            parse_message(b"SIP/2.0 999 Nope\r\n\r\n"),
            Err(ParseError::BadStatusCode)
        );
        assert!(matches!(
            parse_message(b"INVITE sip:x@h SIP/2.0\r\nBroken header line\r\n\r\n"),
            Err(ParseError::MalformedHeader(_))
        ));
    }

    #[test]
    fn body_length_mismatch_detected() {
        let mut wire = sample_invite_wire();
        wire.pop(); // truncate one body byte
        assert!(matches!(
            parse_message(&wire),
            Err(ParseError::BodyLengthMismatch { .. })
        ));
    }

    #[test]
    fn message_without_blank_line_has_no_body() {
        let msg = parse_message(b"OPTIONS sip:h SIP/2.0\r\nCSeq: 7 OPTIONS").unwrap();
        let req = msg.as_request().unwrap();
        assert_eq!(req.method, Method::Options);
        assert!(req.body.is_empty());
        assert_eq!(req.cseq_number(), Some(7));
    }

    #[test]
    fn error_display() {
        let e = ParseError::BodyLengthMismatch {
            declared: 10,
            actual: 3,
        };
        assert!(e.to_string().contains("10"));
        assert!(ParseError::Empty.to_string().contains("empty"));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::message::format_via;
    use proptest::prelude::*;

    fn method_strategy() -> impl Strategy<Value = Method> {
        proptest::sample::select(Method::ALL.to_vec())
    }

    proptest! {
        /// parse ∘ to_wire = id for arbitrary structured requests.
        #[test]
        fn request_round_trip(
            method in method_strategy(),
            user in "[a-z]{1,8}",
            host in "[a-z]{1,8}",
            cseq in 1u32..9999,
            body in proptest::collection::vec(any::<u8>(), 0..64),
        ) {
            let req = Request::new(method, SipUri::new(&user, &host))
                .header(HeaderName::Via, format_via(&host, 5060, "z9hG4bKpt"))
                .header(HeaderName::CallId, format!("{user}@{host}"))
                .header(HeaderName::CSeq, format!("{cseq} {method}"))
                .with_body("application/octet-stream", body);
            let wire = req.to_wire();
            let back = parse_message(&wire).unwrap();
            prop_assert_eq!(back.as_request().unwrap(), &req);
        }

        /// parse ∘ to_wire = id for arbitrary structured responses.
        #[test]
        fn response_round_trip(
            code in 100u16..700,
            cseq in 1u32..9999,
            body in proptest::collection::vec(any::<u8>(), 0..64),
        ) {
            let resp = Response::new(StatusCode(code))
                .header(HeaderName::Via, format_via("h", 5060, "z9hG4bKpt"))
                .header(HeaderName::CSeq, format!("{cseq} INVITE"))
                .with_body("application/octet-stream", body);
            let wire = resp.to_wire();
            let back = parse_message(&wire).unwrap();
            prop_assert_eq!(back.as_response().unwrap(), &resp);
        }

        /// The parser never panics on arbitrary bytes.
        #[test]
        fn parser_total_on_garbage(buf in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = parse_message(&buf);
        }
    }

    /// Header names a generated set may draw from. Content-Type and
    /// Content-Length are managed by `with_body`, so they stay out of the
    /// pool; values are generated over a trim-stable charset so the
    /// parser's whitespace normalization is the identity on them.
    fn header_pool() -> Vec<HeaderName> {
        vec![
            HeaderName::Via,
            HeaderName::From,
            HeaderName::To,
            HeaderName::Contact,
            HeaderName::MaxForwards,
            HeaderName::Expires,
            HeaderName::UserAgent,
            HeaderName::Allow,
            HeaderName::Authorization,
            HeaderName::WwwAuthenticate,
            HeaderName::RetryAfter,
            HeaderName::Other("X-Custom".to_owned()),
            HeaderName::Other("X-Trace-Id".to_owned()),
        ]
    }

    fn generated_headers(
    ) -> proptest::collection::VecStrategy<(proptest::sample::Select<HeaderName>, &'static str)>
    {
        proptest::collection::vec(
            (
                proptest::sample::select(header_pool()),
                "[a-zA-Z0-9<>@:;=./-]{1,24}",
            ),
            0..10,
        )
    }

    proptest! {
        /// parse ∘ to_wire = id over *generated* header sets (repeats,
        /// arbitrary order, extension headers), and the analytic
        /// `wire_len` matches the serialized length exactly.
        #[test]
        fn generated_request_round_trip(
            method in method_strategy(),
            user in "[a-z]{1,8}",
            host in "[a-z]{1,8}",
            headers in generated_headers(),
            body in proptest::collection::vec(any::<u8>(), 0..64),
        ) {
            let mut req = Request::new(method, SipUri::new(&user, &host))
                .header(HeaderName::Via, format_via(&host, 5060, "z9hG4bKgen"))
                .header(HeaderName::CallId, format!("{user}@{host}"))
                .header(HeaderName::CSeq, format!("1 {method}"));
            for (name, value) in &headers {
                req.headers.push(name.clone(), value.clone());
            }
            let req = req.with_body("application/octet-stream", body);
            let wire = req.to_wire();
            prop_assert_eq!(wire.len(), req.wire_len(), "analytic wire_len is exact");
            let back = parse_message(&wire).unwrap();
            prop_assert_eq!(back.as_request().unwrap(), &req);
        }

        /// Same for responses.
        #[test]
        fn generated_response_round_trip(
            code in 100u16..700,
            headers in generated_headers(),
            body in proptest::collection::vec(any::<u8>(), 0..64),
        ) {
            let mut resp = Response::new(StatusCode(code))
                .header(HeaderName::Via, format_via("h", 5060, "z9hG4bKgen"))
                .header(HeaderName::CSeq, "1 INVITE");
            for (name, value) in &headers {
                resp.headers.push(name.clone(), value.clone());
            }
            let resp = resp.with_body("application/octet-stream", body);
            let wire = resp.to_wire();
            prop_assert_eq!(wire.len(), resp.wire_len(), "analytic wire_len is exact");
            let back = parse_message(&wire).unwrap();
            prop_assert_eq!(back.as_response().unwrap(), &resp);
        }

        /// The lazy wire view answers every field exactly as the eager
        /// parser does on the same bytes.
        #[test]
        fn wire_view_agrees_with_eager_parser(
            method in method_strategy(),
            user in "[a-z]{1,8}",
            host in "[a-z]{1,8}",
            from_tag in "[a-z0-9]{1,6}",
            headers in generated_headers(),
            body in proptest::collection::vec(any::<u8>(), 0..64),
        ) {
            let mut req = Request::new(method, SipUri::new(&user, &host))
                .header(HeaderName::Via, format_via(&host, 5060, "z9hG4bKview"))
                .header(HeaderName::From, format!("<sip:{user}@{host}>;tag={from_tag}"))
                .header(HeaderName::To, format!("<sip:peer@{host}>"))
                .header(HeaderName::CallId, format!("{user}@{host}"))
                .header(HeaderName::CSeq, format!("7 {method}"));
            for (name, value) in &headers {
                req.headers.push(name.clone(), value.clone());
            }
            let req = req.with_body("application/octet-stream", body);
            let wire = req.to_wire();

            let msg = parse_message(&wire).unwrap();
            let parsed = msg.as_request().unwrap();
            let view = crate::wire::WireMessage::parse(&wire).unwrap();

            prop_assert!(view.is_request());
            prop_assert_eq!(view.method_token(), Some(parsed.method.as_str()));
            prop_assert_eq!(view.uri_str().map(str::to_owned),
                            Some(parsed.uri.to_string()));
            prop_assert_eq!(view.call_id(), parsed.call_id());
            prop_assert_eq!(view.top_via_branch(), parsed.top_via_branch());
            prop_assert_eq!(view.cseq().map(|(n, _)| n), parsed.cseq_number());
            prop_assert_eq!(
                view.from_tag(),
                parsed.headers.get(&HeaderName::From).and_then(crate::headers::tag_of)
            );
            prop_assert_eq!(
                view.to_tag(),
                parsed.headers.get(&HeaderName::To).and_then(crate::headers::tag_of)
            );
            prop_assert_eq!(Some(view.body()), parsed.body.as_bytes());
            // Every pooled name: first-value agreement (including absent).
            for name in header_pool() {
                prop_assert_eq!(view.header(&name), parsed.headers.get(&name));
            }
        }
    }
}
