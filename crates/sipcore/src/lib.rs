//! SIP (Session Initiation Protocol) substrate — an RFC 3261 subset.
//!
//! The paper's empirical method drives real SIP signalling between a SIPp
//! call generator, an Asterisk PBX and a SIPp receiver (its Fig. 2 ladder:
//! INVITE / 100 Trying / 180 Ringing / 200 OK / ACK … BYE / 200 OK — nine
//! messages to establish a call and four to tear it down). This crate
//! provides everything those components need:
//!
//! * a typed message model ([`Request`], [`Response`], [`SipMessage`]);
//! * SIP URIs with parameters ([`uri::SipUri`]);
//! * a text parser and serializer that round-trip the RFC 3261 wire format
//!   ([`parse`]);
//! * client/server transaction state machines with the RFC's timer
//!   semantics, T1-based retransmission and absorption of retransmits
//!   ([`transaction`]);
//! * dialog identification and tracking ([`dialog`]);
//! * a minimal SDP body builder/parser ([`sdp`]) sufficient to negotiate a
//!   G.711 μ-law audio stream;
//! * zero-allocation hot-path support: a deterministic string interner
//!   ([`atoms`]), lazy borrowed views over raw wire bytes ([`wire`] for
//!   messages, [`sdp::wire`] for session descriptions, plus structured
//!   [`message::Body::Sdp`] bodies serialized on demand) and a free-list
//!   of reusable serialization buffers ([`pool`]).
//!
//! The implementation favours explicitness over completeness: every header
//! needed by the evaluation is first-class, everything else rides in the
//! generic header map and survives round-trips untouched.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atoms;
pub mod auth;
pub mod dialog;
pub mod headers;
pub mod message;
pub mod method;
pub mod parse;
pub mod pool;
pub mod sdp;
pub mod status;
pub mod transaction;
pub mod txmgr;
pub mod uri;
pub mod wire;

pub use atoms::{Atom, AtomTable};
pub use dialog::{Dialog, DialogId, DialogKey, DialogState};
pub use headers::{HeaderMap, HeaderName};
pub use message::{Body, Request, Response, SipMessage};
pub use method::Method;
pub use parse::{parse_message, ParseError};
pub use pool::BufferPool;
pub use sdp::wire::{SdpBody, SdpSummary, SdpView};
pub use status::StatusCode;
pub use uri::SipUri;
pub use wire::WireMessage;
