//! Deterministic string interning for signalling hot-path keys.
//!
//! Call-IDs, Via branches and dialog tags are compared and used as map
//! keys on every hop of every call. Hashing and comparing the full
//! strings — and cloning them into owned keys — is a measurable slice of
//! the signalling budget at the paper's 150 E operating point. An
//! [`AtomTable`] maps each distinct string to a dense `u32` handle
//! ([`Atom`]) exactly once; after that, equality, hashing and map keys
//! are integer ops and the steady-state path allocates nothing.
//!
//! # Determinism
//!
//! Handles are assigned in first-intern order, so for a fixed event
//! sequence the mapping string → atom is a pure function of that
//! sequence — independent of hasher state or iteration order. The
//! backing [`des::FastMap`] is only ever used for point lookups; its
//! iteration order is never observed. This is the same argument (and the
//! same map type) as the `vmon` call-handle interning introduced with
//! the media-plane work.

use des::FastMap;
use std::sync::Arc;

/// A handle for an interned string: `Copy`, integer-cheap to compare and
/// hash, and stable for the lifetime of its [`AtomTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Atom(u32);

impl Atom {
    /// The raw handle value (dense, first-seen order).
    #[must_use]
    pub fn index(self) -> u32 {
        self.0
    }
}

/// An append-only interner: strings in, dense [`Atom`] handles out.
#[derive(Debug, Default)]
pub struct AtomTable {
    map: FastMap<Arc<str>, Atom>,
    strings: Vec<Arc<str>>,
}

impl AtomTable {
    /// An empty table.
    #[must_use]
    pub fn new() -> Self {
        AtomTable::default()
    }

    /// The atom for `s`, interning it on first sight. Allocates only the
    /// first time a given string is seen; the steady-state hit path is a
    /// single hash lookup with zero allocation.
    pub fn intern(&mut self, s: &str) -> Atom {
        if let Some(&a) = self.map.get(s) {
            return a;
        }
        let a = Atom(u32::try_from(self.strings.len()).expect("atom table overflow"));
        let shared: Arc<str> = s.into();
        self.strings.push(shared.clone());
        self.map.insert(shared, a);
        a
    }

    /// The atom for `s` if it was interned before; never allocates.
    #[must_use]
    pub fn lookup(&self, s: &str) -> Option<Atom> {
        self.map.get(s).copied()
    }

    /// The string behind an atom.
    ///
    /// # Panics
    /// If `a` did not come from this table.
    #[must_use]
    pub fn resolve(&self, a: Atom) -> &str {
        &self.strings[a.0 as usize]
    }

    /// A shared handle to the string behind an atom — a refcount bump,
    /// never a copy. Lets consumers embed interned strings in
    /// self-contained values (e.g. a structured SDP body) without
    /// re-allocating them per message.
    ///
    /// # Panics
    /// If `a` did not come from this table.
    #[must_use]
    pub fn resolve_shared(&self, a: Atom) -> Arc<str> {
        Arc::clone(&self.strings[a.0 as usize])
    }

    /// Number of distinct strings interned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True when nothing has been interned yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut t = AtomTable::new();
        let a = t.intern("call-1");
        let b = t.intern("call-2");
        assert_ne!(a, b);
        assert_eq!(t.intern("call-1"), a, "second intern returns same atom");
        assert_eq!(t.len(), 2);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1, "handles are dense, first-seen order");
    }

    #[test]
    fn lookup_without_interning() {
        let mut t = AtomTable::new();
        assert_eq!(t.lookup("x"), None);
        let a = t.intern("x");
        assert_eq!(t.lookup("x"), Some(a));
        assert!(!t.is_empty());
    }

    #[test]
    fn resolve_round_trips() {
        let mut t = AtomTable::new();
        let atoms: Vec<Atom> = ["z9hG4bK1", "z9hG4bK2", "tag-a"]
            .iter()
            .map(|s| t.intern(s))
            .collect();
        for (s, a) in ["z9hG4bK1", "z9hG4bK2", "tag-a"].iter().zip(&atoms) {
            assert_eq!(t.resolve(*a), *s);
        }
    }

    #[test]
    fn handles_are_a_function_of_first_seen_order_only() {
        // Two tables fed the same sequence agree exactly; a table fed a
        // permuted sequence assigns different handles — the order, not
        // the hasher, decides.
        let feed = ["a", "b", "a", "c", "b"];
        let mut t1 = AtomTable::new();
        let mut t2 = AtomTable::new();
        let h1: Vec<u32> = feed.iter().map(|s| t1.intern(s).index()).collect();
        let h2: Vec<u32> = feed.iter().map(|s| t2.intern(s).index()).collect();
        assert_eq!(h1, h2);
        let mut t3 = AtomTable::new();
        assert_eq!(t3.intern("c").index(), 0);
    }

    #[test]
    fn resolve_shared_is_a_refcount_bump() {
        let mut t = AtomTable::new();
        let a = t.intern("pbx.unb.br");
        let s1 = t.resolve_shared(a);
        let s2 = t.resolve_shared(a);
        assert_eq!(&*s1, "pbx.unb.br");
        assert!(Arc::ptr_eq(&s1, &s2), "same backing allocation");
    }
}
