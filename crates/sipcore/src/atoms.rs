//! Deterministic string interning for signalling hot-path keys.
//!
//! Call-IDs, Via branches and dialog tags are compared and used as map
//! keys on every hop of every call. Hashing and comparing the full
//! strings — and cloning them into owned keys — is a measurable slice of
//! the signalling budget at the paper's 150 E operating point. An
//! [`AtomTable`] maps each distinct string to a dense `u32` handle
//! ([`Atom`]) exactly once; after that, equality, hashing and map keys
//! are integer ops and the steady-state path allocates nothing.
//!
//! # Determinism
//!
//! Handles are assigned in first-intern order, so for a fixed event
//! sequence the mapping string → atom is a pure function of that
//! sequence — independent of hasher state or iteration order. The
//! backing [`des::FastMap`] is only ever used for point lookups; its
//! iteration order is never observed. This is the same argument (and the
//! same map type) as the `vmon` call-handle interning introduced with
//! the media-plane work.

use des::FastMap;
use std::sync::Arc;

/// A handle for an interned string: `Copy`, integer-cheap to compare and
/// hash, and stable for the lifetime of its [`AtomTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Atom(u32);

impl Atom {
    /// The raw handle value (dense, first-seen order).
    #[must_use]
    pub fn index(self) -> u32 {
        self.0
    }
}

/// An interner: strings in, dense [`Atom`] handles out.
///
/// Mostly append-only — but long-running churn workloads (a million
/// subscribers re-REGISTERing forever, each call a fresh Call-ID) would
/// grow an append-only table without bound. [`AtomTable::release`]
/// returns a handle's slot to a free-list so the *live* table stays
/// O(distinct live strings) rather than O(strings ever seen); releasing
/// is strictly opt-in, so every existing user keeps the append-only
/// behaviour (and its first-seen-order handle determinism) untouched.
/// Cloning is cheap-ish (the strings are `Arc<str>`, so a clone shares
/// every backing allocation and copies only the map/vec structure) and
/// exact: the clone answers every `intern`/`lookup`/`resolve` the
/// original would, in the same handle order. This is what lets a sweep
/// pre-seed a base table once and stamp it out per replication instead
/// of re-interning the same strings every run.
#[derive(Debug, Default, Clone)]
pub struct AtomTable {
    map: FastMap<Arc<str>, Atom>,
    strings: Vec<Arc<str>>,
    /// Released slots awaiting reuse (LIFO: the most recently freed slot
    /// is recycled first, which keeps the live handle range dense under
    /// steady churn).
    free: Vec<u32>,
}

impl AtomTable {
    /// An empty table.
    #[must_use]
    pub fn new() -> Self {
        AtomTable::default()
    }

    /// The atom for `s`, interning it on first sight. Allocates only the
    /// first time a given string is seen; the steady-state hit path is a
    /// single hash lookup with zero allocation.
    pub fn intern(&mut self, s: &str) -> Atom {
        if let Some(&a) = self.map.get(s) {
            return a;
        }
        let shared: Arc<str> = s.into();
        let a = if let Some(slot) = self.free.pop() {
            self.strings[slot as usize] = shared.clone();
            Atom(slot)
        } else {
            let slot = u32::try_from(self.strings.len()).expect("atom table overflow");
            self.strings.push(shared.clone());
            Atom(slot)
        };
        self.map.insert(shared, a);
        a
    }

    /// Return `a`'s slot to the free-list for reuse by a future intern.
    ///
    /// The caller asserts the handle is dead: no copy of `a` may be used
    /// to resolve, compare, or release after this — once the slot is
    /// recycled a stale copy aliases the new tenant (a `u32` handle has
    /// no generation bits). Releasing an already-released-but-not-yet-
    /// reused or never-interned handle is a no-op returning `false`;
    /// `true` means the slot was freed now.
    pub fn release(&mut self, a: Atom) -> bool {
        let Some(s) = self.strings.get(a.0 as usize) else {
            return false;
        };
        // Only live handles (still mapped to this exact slot) can be
        // freed — a stale duplicate release must not free the slot's new
        // tenant.
        if self.map.get(&**s) != Some(&a) {
            return false;
        }
        let key = Arc::clone(s);
        self.map.remove(&*key);
        self.free.push(a.0);
        true
    }

    /// Number of released slots currently awaiting reuse.
    #[must_use]
    pub fn free_slots(&self) -> usize {
        self.free.len()
    }

    /// The atom for `s` if it was interned before; never allocates.
    #[must_use]
    pub fn lookup(&self, s: &str) -> Option<Atom> {
        self.map.get(s).copied()
    }

    /// The string behind an atom.
    ///
    /// # Panics
    /// If `a` did not come from this table.
    #[must_use]
    pub fn resolve(&self, a: Atom) -> &str {
        &self.strings[a.0 as usize]
    }

    /// A shared handle to the string behind an atom — a refcount bump,
    /// never a copy. Lets consumers embed interned strings in
    /// self-contained values (e.g. a structured SDP body) without
    /// re-allocating them per message.
    ///
    /// # Panics
    /// If `a` did not come from this table.
    #[must_use]
    pub fn resolve_shared(&self, a: Atom) -> Arc<str> {
        Arc::clone(&self.strings[a.0 as usize])
    }

    /// Number of distinct *live* strings interned (released slots do not
    /// count).
    #[must_use]
    pub fn len(&self) -> usize {
        self.strings.len() - self.free.len()
    }

    /// True when no live string is interned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut t = AtomTable::new();
        let a = t.intern("call-1");
        let b = t.intern("call-2");
        assert_ne!(a, b);
        assert_eq!(t.intern("call-1"), a, "second intern returns same atom");
        assert_eq!(t.len(), 2);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1, "handles are dense, first-seen order");
    }

    #[test]
    fn lookup_without_interning() {
        let mut t = AtomTable::new();
        assert_eq!(t.lookup("x"), None);
        let a = t.intern("x");
        assert_eq!(t.lookup("x"), Some(a));
        assert!(!t.is_empty());
    }

    #[test]
    fn resolve_round_trips() {
        let mut t = AtomTable::new();
        let atoms: Vec<Atom> = ["z9hG4bK1", "z9hG4bK2", "tag-a"]
            .iter()
            .map(|s| t.intern(s))
            .collect();
        for (s, a) in ["z9hG4bK1", "z9hG4bK2", "tag-a"].iter().zip(&atoms) {
            assert_eq!(t.resolve(*a), *s);
        }
    }

    #[test]
    fn handles_are_a_function_of_first_seen_order_only() {
        // Two tables fed the same sequence agree exactly; a table fed a
        // permuted sequence assigns different handles — the order, not
        // the hasher, decides.
        let feed = ["a", "b", "a", "c", "b"];
        let mut t1 = AtomTable::new();
        let mut t2 = AtomTable::new();
        let h1: Vec<u32> = feed.iter().map(|s| t1.intern(s).index()).collect();
        let h2: Vec<u32> = feed.iter().map(|s| t2.intern(s).index()).collect();
        assert_eq!(h1, h2);
        let mut t3 = AtomTable::new();
        assert_eq!(t3.intern("c").index(), 0);
    }

    #[test]
    fn release_recycles_slots_and_bounds_the_table() {
        let mut t = AtomTable::new();
        let a = t.intern("call-1");
        let b = t.intern("call-2");
        assert!(t.release(a), "live handle frees its slot");
        assert_eq!(t.len(), 1);
        assert_eq!(t.free_slots(), 1);
        assert_eq!(t.lookup("call-1"), None, "released string forgotten");
        // Double-release before the slot is reused is a rejected no-op.
        assert!(!t.release(a), "already-freed handle is a no-op");
        assert_eq!(t.free_slots(), 1, "slot not freed twice");
        // The next intern reuses the freed slot — the backing Vec did not
        // grow.
        let c = t.intern("call-3");
        assert_eq!(c.index(), a.index(), "slot recycled LIFO");
        assert_eq!(t.resolve(c), "call-3");
        assert_eq!(t.free_slots(), 0);
        assert_eq!(t.lookup("call-3"), Some(c));
        assert_eq!(t.lookup("call-2"), Some(b));
        // Churn loop: N cycles of intern+release keep the table at one
        // live slot — the unbounded-growth regression this API fixes.
        for i in 0..1000 {
            let s = format!("churn-{i}");
            let a = t.intern(&s);
            assert!(a.index() < 3, "live slots stay dense under churn");
            t.release(a);
        }
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn release_of_unknown_handle_is_rejected() {
        let mut t = AtomTable::new();
        t.intern("x");
        assert!(!t.release(Atom(7)), "never-issued handle");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn resolve_shared_is_a_refcount_bump() {
        let mut t = AtomTable::new();
        let a = t.intern("pbx.unb.br");
        let s1 = t.resolve_shared(a);
        let s2 = t.resolve_shared(a);
        assert_eq!(&*s1, "pbx.unb.br");
        assert!(Arc::ptr_eq(&s1, &s2), "same backing allocation");
    }
}
