//! SIP digest authentication (RFC 2617 as profiled by RFC 3261 §22).
//!
//! The UnB deployment authenticates SIP users against LDAP; on the wire
//! that is digest authentication: the registrar challenges with a nonce
//! (`401` + `WWW-Authenticate`), the client answers with
//! `MD5(MD5(user:realm:password) : nonce : MD5(method:uri))`. Both sides
//! are implemented here, including the MD5 primitive itself (RFC 1321,
//! implemented from scratch — cryptographically broken since 2004, but
//! mandated by the SIP digest scheme and perfectly adequate for a
//! simulation).

use std::collections::HashMap;

// ---------------------------------------------------------------------------
// MD5 (RFC 1321)
// ---------------------------------------------------------------------------

const S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, //
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, //
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, //
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
];

const K: [u32; 64] = [
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613, 0xfd469501,
    0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821,
    0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a,
    0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70,
    0x289b7ec6, 0xeaa127fa, 0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391,
];

/// Compute the MD5 digest of a byte string.
#[must_use]
pub fn md5(input: &[u8]) -> [u8; 16] {
    let mut msg = input.to_vec();
    let bit_len = (input.len() as u64).wrapping_mul(8);
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&bit_len.to_le_bytes());

    let mut a0: u32 = 0x6745_2301;
    let mut b0: u32 = 0xefcd_ab89;
    let mut c0: u32 = 0x98ba_dcfe;
    let mut d0: u32 = 0x1032_5476;

    for chunk in msg.chunks_exact(64) {
        let mut m = [0u32; 16];
        for (i, w) in chunk.chunks_exact(4).enumerate() {
            m[i] = u32::from_le_bytes([w[0], w[1], w[2], w[3]]);
        }
        let (mut a, mut b, mut c, mut d) = (a0, b0, c0, d0);
        for i in 0..64 {
            let (f, g) = match i / 16 {
                0 => ((b & c) | (!b & d), i),
                1 => ((d & b) | (!d & c), (5 * i + 1) % 16),
                2 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            let tmp = d;
            d = c;
            c = b;
            b = b.wrapping_add(
                a.wrapping_add(f)
                    .wrapping_add(K[i])
                    .wrapping_add(m[g])
                    .rotate_left(S[i]),
            );
            a = tmp;
        }
        a0 = a0.wrapping_add(a);
        b0 = b0.wrapping_add(b);
        c0 = c0.wrapping_add(c);
        d0 = d0.wrapping_add(d);
    }
    let mut out = [0u8; 16];
    out[0..4].copy_from_slice(&a0.to_le_bytes());
    out[4..8].copy_from_slice(&b0.to_le_bytes());
    out[8..12].copy_from_slice(&c0.to_le_bytes());
    out[12..16].copy_from_slice(&d0.to_le_bytes());
    out
}

/// MD5 as a lower-case hex string (the form digest auth exchanges).
#[must_use]
pub fn md5_hex(input: &[u8]) -> String {
    let d = md5(input);
    let mut s = String::with_capacity(32);
    for b in d {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

// ---------------------------------------------------------------------------
// Digest challenge / response
// ---------------------------------------------------------------------------

/// A `WWW-Authenticate: Digest ...` challenge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DigestChallenge {
    /// Protection realm.
    pub realm: String,
    /// Server nonce.
    pub nonce: String,
}

impl DigestChallenge {
    /// Serialize as a `WWW-Authenticate` header value.
    #[must_use]
    pub fn to_header_value(&self) -> String {
        format!(
            "Digest realm=\"{}\", nonce=\"{}\", algorithm=MD5",
            self.realm, self.nonce
        )
    }

    /// Parse a `WWW-Authenticate` header value.
    #[must_use]
    pub fn parse(value: &str) -> Option<DigestChallenge> {
        let params = parse_digest_params(value)?;
        Some(DigestChallenge {
            realm: params.get("realm")?.clone(),
            nonce: params.get("nonce")?.clone(),
        })
    }
}

/// An `Authorization: Digest ...` credential.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DigestCredentials {
    /// Authenticating user.
    pub username: String,
    /// Realm echoed from the challenge.
    pub realm: String,
    /// Nonce echoed from the challenge.
    pub nonce: String,
    /// Request-URI the digest covers.
    pub uri: String,
    /// The 32-hex-digit response.
    pub response: String,
}

impl DigestCredentials {
    /// Compute credentials for a challenge per RFC 2617 (no qop):
    /// `response = MD5(HA1:nonce:HA2)` with `HA1 = MD5(user:realm:pw)` and
    /// `HA2 = MD5(method:uri)`.
    #[must_use]
    pub fn answer(
        challenge: &DigestChallenge,
        username: &str,
        password: &str,
        method: &str,
        uri: &str,
    ) -> DigestCredentials {
        let ha1 = md5_hex(format!("{username}:{}:{password}", challenge.realm).as_bytes());
        let ha2 = md5_hex(format!("{method}:{uri}").as_bytes());
        let response = md5_hex(format!("{ha1}:{}:{ha2}", challenge.nonce).as_bytes());
        DigestCredentials {
            username: username.to_owned(),
            realm: challenge.realm.clone(),
            nonce: challenge.nonce.clone(),
            uri: uri.to_owned(),
            response,
        }
    }

    /// Serialize as an `Authorization` header value.
    #[must_use]
    pub fn to_header_value(&self) -> String {
        format!(
            "Digest username=\"{}\", realm=\"{}\", nonce=\"{}\", uri=\"{}\", response=\"{}\", algorithm=MD5",
            self.username, self.realm, self.nonce, self.uri, self.response
        )
    }

    /// Parse an `Authorization` header value.
    #[must_use]
    pub fn parse(value: &str) -> Option<DigestCredentials> {
        let params = parse_digest_params(value)?;
        Some(DigestCredentials {
            username: params.get("username")?.clone(),
            realm: params.get("realm")?.clone(),
            nonce: params.get("nonce")?.clone(),
            uri: params.get("uri")?.clone(),
            response: params.get("response")?.clone(),
        })
    }

    /// Server-side check: does this credential prove knowledge of
    /// `password` for the expected nonce and method?
    #[must_use]
    pub fn verify(&self, password: &str, method: &str, expected_nonce: &str) -> bool {
        if self.nonce != expected_nonce {
            return false;
        }
        let ha1 = md5_hex(format!("{}:{}:{password}", self.username, self.realm).as_bytes());
        let ha2 = md5_hex(format!("{method}:{}", self.uri).as_bytes());
        let expect = md5_hex(format!("{ha1}:{}:{ha2}", self.nonce).as_bytes());
        // Constant-time-ish comparison (length is fixed at 32).
        expect
            .bytes()
            .zip(self.response.bytes())
            .fold(0u8, |acc, (a, b)| acc | (a ^ b))
            == 0
            && self.response.len() == 32
    }
}

/// Parse `Digest k1="v1", k2=v2, ...` into a map.
fn parse_digest_params(value: &str) -> Option<HashMap<String, String>> {
    let rest = value.trim().strip_prefix("Digest ")?;
    let mut out = HashMap::new();
    for part in rest.split(',') {
        let (k, v) = part.split_once('=')?;
        let v = v.trim().trim_matches('"');
        out.insert(k.trim().to_owned(), v.to_owned());
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn md5_rfc1321_test_vectors() {
        // The official test suite from RFC 1321 §A.5.
        let cases = [
            ("", "d41d8cd98f00b204e9800998ecf8427e"),
            ("a", "0cc175b9c0f1b6a831c399e269772661"),
            ("abc", "900150983cd24fb0d6963f7d28e17f72"),
            ("message digest", "f96b697d7cb7938d525a2f31aaf161d0"),
            (
                "abcdefghijklmnopqrstuvwxyz",
                "c3fcd3d76192e4007dfb496cca67e13b",
            ),
            (
                "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
                "d174ab98d277d9f5a5611c2c9f419d9f",
            ),
            (
                "12345678901234567890123456789012345678901234567890123456789012345678901234567890",
                "57edf4a22be3c955ac49da2e2107b67a",
            ),
        ];
        for (input, want) in cases {
            assert_eq!(md5_hex(input.as_bytes()), want, "md5({input:?})");
        }
    }

    #[test]
    fn md5_padding_boundaries() {
        // Lengths around the 56-byte padding boundary must not panic and
        // must differ from each other.
        let a = md5_hex(&[0u8; 55]);
        let b = md5_hex(&[0u8; 56]);
        let c = md5_hex(&[0u8; 57]);
        let d = md5_hex(&[0u8; 64]);
        let all = [&a, &b, &c, &d];
        for i in 0..all.len() {
            for j in i + 1..all.len() {
                assert_ne!(all[i], all[j]);
            }
        }
    }

    #[test]
    fn rfc2617_digest_example() {
        // The worked example from RFC 2617 §3.5 (adapted: SIP uses the
        // same computation; this checks HA1/HA2 chaining end to end).
        let challenge = DigestChallenge {
            realm: "testrealm@host.com".to_owned(),
            nonce: "dcd98b7102dd2f0e8b11d0f600bfb0c093".to_owned(),
        };
        let creds = DigestCredentials::answer(
            &challenge,
            "Mufasa",
            "Circle Of Life",
            "GET",
            "/dir/index.html",
        );
        assert_eq!(creds.response, "670fd8c2df070c60b045671b8b24ff02");
        assert!(creds.verify("Circle Of Life", "GET", &challenge.nonce));
        assert!(!creds.verify("wrong password", "GET", &challenge.nonce));
        assert!(!creds.verify("Circle Of Life", "PUT", &challenge.nonce));
        assert!(!creds.verify("Circle Of Life", "GET", "other-nonce"));
    }

    #[test]
    fn header_round_trips() {
        let ch = DigestChallenge {
            realm: "pbx.unb.br".to_owned(),
            nonce: "abc123".to_owned(),
        };
        let parsed = DigestChallenge::parse(&ch.to_header_value()).unwrap();
        assert_eq!(parsed, ch);

        let creds = DigestCredentials::answer(&ch, "1001", "pw-1001", "REGISTER", "sip:pbx.unb.br");
        let parsed = DigestCredentials::parse(&creds.to_header_value()).unwrap();
        assert_eq!(parsed, creds);
        assert!(parsed.verify("pw-1001", "REGISTER", "abc123"));
    }

    #[test]
    fn parse_rejects_non_digest() {
        assert!(DigestChallenge::parse("Basic realm=\"x\"").is_none());
        assert!(DigestCredentials::parse("Simple 1001 pw").is_none());
        assert!(
            DigestChallenge::parse("Digest realm=\"x\"").is_none(),
            "nonce required"
        );
    }

    #[test]
    fn tampered_response_rejected() {
        let ch = DigestChallenge {
            realm: "r".to_owned(),
            nonce: "n".to_owned(),
        };
        let mut creds = DigestCredentials::answer(&ch, "u", "p", "REGISTER", "sip:r");
        // Flip one hex digit.
        let mut chars: Vec<char> = creds.response.chars().collect();
        chars[0] = if chars[0] == '0' { '1' } else { '0' };
        creds.response = chars.into_iter().collect();
        assert!(!creds.verify("p", "REGISTER", "n"));
        // Truncated response rejected too.
        creds.response.truncate(31);
        assert!(!creds.verify("p", "REGISTER", "n"));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// MD5 is deterministic and spreads inputs (no trivial collisions
        /// on small perturbations).
        #[test]
        fn md5_deterministic(data in proptest::collection::vec(any::<u8>(), 0..200)) {
            prop_assert_eq!(md5(&data), md5(&data));
        }

        #[test]
        fn md5_bit_flip_changes_digest(
            mut data in proptest::collection::vec(any::<u8>(), 1..128),
            idx in 0usize..128,
        ) {
            let original = md5(&data);
            let i = idx % data.len();
            data[i] ^= 1;
            prop_assert_ne!(md5(&data), original);
        }

        /// Any password authenticates against itself and fails against a
        /// different one.
        #[test]
        fn digest_soundness(user in "[a-z]{1,8}", pw in "[a-z0-9]{1,12}", other in "[A-Z]{1,12}") {
            let ch = DigestChallenge { realm: "r".to_owned(), nonce: "n0".to_owned() };
            let creds = DigestCredentials::answer(&ch, &user, &pw, "REGISTER", "sip:r");
            prop_assert!(creds.verify(&pw, "REGISTER", "n0"));
            prop_assert!(!creds.verify(&other, "REGISTER", "n0"));
        }
    }
}
