//! SIP request methods.

use serde::{Deserialize, Serialize};

/// The request methods used by the evaluation (RFC 3261 core set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Method {
    /// Initiate a session.
    Invite,
    /// Acknowledge a final response to an INVITE.
    Ack,
    /// Terminate a session.
    Bye,
    /// Cancel a pending INVITE.
    Cancel,
    /// Bind a contact to an address-of-record.
    Register,
    /// Capability query / keep-alive.
    Options,
}

impl Method {
    /// Canonical upper-case token.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Invite => "INVITE",
            Method::Ack => "ACK",
            Method::Bye => "BYE",
            Method::Cancel => "CANCEL",
            Method::Register => "REGISTER",
            Method::Options => "OPTIONS",
        }
    }

    /// Parse a method token (case-sensitive per RFC 3261 §7.1).
    #[must_use]
    pub fn from_token(s: &str) -> Option<Method> {
        Some(match s {
            "INVITE" => Method::Invite,
            "ACK" => Method::Ack,
            "BYE" => Method::Bye,
            "CANCEL" => Method::Cancel,
            "REGISTER" => Method::Register,
            "OPTIONS" => Method::Options,
            _ => return None,
        })
    }

    /// INVITE transactions have distinct state machines from all others.
    #[must_use]
    pub fn is_invite(self) -> bool {
        self == Method::Invite
    }

    /// ACK is special: it is a standalone request that never elicits a
    /// response.
    #[must_use]
    pub fn expects_response(self) -> bool {
        self != Method::Ack
    }

    /// All methods (for exhaustive tests/benches).
    pub const ALL: [Method; 6] = [
        Method::Invite,
        Method::Ack,
        Method::Bye,
        Method::Cancel,
        Method::Register,
        Method::Options,
    ];
}

impl core::fmt::Display for Method {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_round_trip() {
        for m in Method::ALL {
            assert_eq!(Method::from_token(m.as_str()), Some(m));
            assert_eq!(format!("{m}"), m.as_str());
        }
    }

    #[test]
    fn unknown_and_case_sensitivity() {
        assert_eq!(Method::from_token("SUBSCRIBE"), None);
        assert_eq!(
            Method::from_token("invite"),
            None,
            "methods are case-sensitive"
        );
        assert_eq!(Method::from_token(""), None);
    }

    #[test]
    fn classification() {
        assert!(Method::Invite.is_invite());
        assert!(!Method::Bye.is_invite());
        assert!(!Method::Ack.expects_response());
        assert!(Method::Bye.expects_response());
    }
}
