//! SIP request/response model and wire serialization.

use crate::headers::{HeaderMap, HeaderName};
use crate::method::Method;
use crate::sdp::wire::{SdpBody, SdpView};
use crate::sdp::SdpCodec;
use crate::status::StatusCode;
use crate::uri::SipUri;
use serde::{Deserialize, Serialize};

/// The SIP protocol version token used on every start line.
pub const SIP_VERSION: &str = "SIP/2.0";

/// A SIP message body.
///
/// The interned signalling path carries SDP-bearing messages with the
/// structured [`Body::Sdp`] form — analytic length, shared endpoint
/// strings, serialized only if a consumer materializes the wire. The
/// reference path (and anything parsed off the wire) carries raw
/// [`Body::Bytes`]. The SDP accessors answer over both forms — direct
/// field reads on `Sdp`, a lazy zero-allocation [`SdpView`] scan on
/// `Bytes` — so endpoints never see which path delivered the message.
///
/// Cross-form equality compares serialized bytes, so a structured body
/// and the bytes it would produce are the same body.
#[derive(Debug, Clone)]
pub enum Body {
    /// Raw body bytes (possibly empty).
    Bytes(Vec<u8>),
    /// A structured session description, serialized on demand.
    Sdp(SdpBody),
}

impl Body {
    /// The empty body.
    #[must_use]
    pub fn empty() -> Body {
        Body::Bytes(Vec::new())
    }

    /// Serialized length, computed without serializing.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            Body::Bytes(b) => b.len(),
            Body::Sdp(s) => s.len(),
        }
    }

    /// Whether the serialized body would be empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        match self {
            Body::Bytes(b) => b.is_empty(),
            Body::Sdp(_) => false,
        }
    }

    /// The raw bytes, when this body already is bytes. Structured bodies
    /// return `None` — use the SDP accessors or [`Body::to_vec`].
    #[must_use]
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Body::Bytes(b) => Some(b),
            Body::Sdp(_) => None,
        }
    }

    /// The structured session description, when this body carries one.
    #[must_use]
    pub fn as_sdp(&self) -> Option<&SdpBody> {
        match self {
            Body::Bytes(_) => None,
            Body::Sdp(s) => Some(s),
        }
    }

    /// Serialize into a caller-supplied buffer (appending).
    pub fn write_into(&self, out: &mut Vec<u8>) {
        match self {
            Body::Bytes(b) => out.extend_from_slice(b),
            Body::Sdp(s) => s.write_into(out),
        }
    }

    /// Materialize the serialized bytes (allocates; cold paths only).
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        match self {
            Body::Bytes(b) => b.clone(),
            Body::Sdp(s) => {
                let mut out = Vec::with_capacity(s.len());
                s.write_into(&mut out);
                out
            }
        }
    }

    /// SDP audio media port, over either form, without allocating.
    #[must_use]
    pub fn sdp_audio_port(&self) -> Option<u16> {
        match self {
            Body::Bytes(b) => SdpView::parse(b)?.audio_port(),
            Body::Sdp(s) => Some(s.audio_port),
        }
    }

    /// SDP negotiable codec (first recognized payload type), over either
    /// form, without allocating.
    #[must_use]
    pub fn sdp_codec(&self) -> Option<SdpCodec> {
        match self {
            Body::Bytes(b) => SdpView::parse(b)?.codec(),
            Body::Sdp(s) => Some(s.codec),
        }
    }

    /// SDP origin username, over either form, without allocating.
    #[must_use]
    pub fn sdp_origin_user(&self) -> Option<&str> {
        match self {
            Body::Bytes(b) => SdpView::parse(b)?.origin_user(),
            Body::Sdp(s) => Some(&s.origin_user),
        }
    }

    /// SDP connection address, over either form, without allocating.
    #[must_use]
    pub fn sdp_connection(&self) -> Option<&str> {
        match self {
            Body::Bytes(b) => SdpView::parse(b)?.connection(),
            Body::Sdp(s) => Some(&s.connection),
        }
    }
}

impl Default for Body {
    fn default() -> Self {
        Body::empty()
    }
}

impl From<Vec<u8>> for Body {
    fn from(b: Vec<u8>) -> Self {
        Body::Bytes(b)
    }
}

impl From<SdpBody> for Body {
    fn from(s: SdpBody) -> Self {
        Body::Sdp(s)
    }
}

impl PartialEq for Body {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Body::Bytes(a), Body::Bytes(b)) => a == b,
            (Body::Sdp(a), Body::Sdp(b)) => a == b,
            // Cross-form: a structured body equals the bytes it writes.
            (a, b) => a.to_vec() == b.to_vec(),
        }
    }
}

impl Eq for Body {}

impl Serialize for Body {
    fn to_value(&self) -> serde::Value {
        // Serialize as the materialized byte array, matching the old
        // `Vec<u8>` field encoding exactly (pcap/debug dumps are cold).
        self.to_vec().to_value()
    }
}

impl Deserialize for Body {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        Ok(Body::Bytes(Vec::<u8>::from_value(v)?))
    }
}

/// A SIP request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// Request method.
    pub method: Method,
    /// Request-URI (the target of this hop).
    pub uri: SipUri,
    /// Header fields.
    pub headers: HeaderMap,
    /// Message body (SDP for INVITE/200, empty otherwise).
    pub body: Body,
}

/// A SIP response.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Response {
    /// Status code.
    pub status: StatusCode,
    /// Header fields.
    pub headers: HeaderMap,
    /// Message body.
    pub body: Body,
}

/// Either kind of SIP message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SipMessage {
    /// A request.
    Request(Request),
    /// A response.
    Response(Response),
}

impl Request {
    /// A new request with empty headers and body.
    #[must_use]
    pub fn new(method: Method, uri: SipUri) -> Self {
        Request {
            method,
            uri,
            headers: HeaderMap::new(),
            body: Body::empty(),
        }
    }

    /// Builder: add a header.
    #[must_use]
    pub fn header(mut self, name: HeaderName, value: impl Into<String>) -> Self {
        self.headers.push(name, value);
        self
    }

    /// Builder: set the body and its Content-Type/Content-Length headers.
    #[must_use]
    pub fn with_body(mut self, content_type: &str, body: Vec<u8>) -> Self {
        self.headers.set(HeaderName::ContentType, content_type);
        self.headers
            .set(HeaderName::ContentLength, body.len().to_string());
        self.body = Body::Bytes(body);
        self
    }

    /// Builder: attach a structured SDP body without serializing it. The
    /// Content-Length comes from the analytic [`SdpBody::len`]; the text
    /// form exists only if the message is later written to the wire.
    #[must_use]
    pub fn with_sdp(mut self, sdp: SdpBody) -> Self {
        self.headers.set(HeaderName::ContentType, "application/sdp");
        self.headers
            .set(HeaderName::ContentLength, sdp.len().to_string());
        self.body = Body::Sdp(sdp);
        self
    }

    /// CSeq number (from the `CSeq: n METHOD` header), if parseable.
    #[must_use]
    pub fn cseq_number(&self) -> Option<u32> {
        let v = self.headers.get(&HeaderName::CSeq)?;
        v.split_whitespace().next()?.parse().ok()
    }

    /// Call-ID header value.
    #[must_use]
    pub fn call_id(&self) -> Option<&str> {
        self.headers.get(&HeaderName::CallId)
    }

    /// Top Via branch parameter — the transaction key.
    #[must_use]
    pub fn top_via_branch(&self) -> Option<&str> {
        let via = self.headers.get(&HeaderName::Via)?;
        branch_of(via)
    }

    /// Serialize to the RFC 3261 wire format. Allocates exactly once
    /// (the returned buffer, sized by [`Request::wire_len`]).
    #[must_use]
    pub fn to_wire(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_len());
        self.to_wire_into(&mut out);
        out
    }

    /// Serialize into a caller-supplied buffer (appending), allocating
    /// nothing beyond what the buffer itself must grow — the pooled-
    /// buffer serialization path.
    pub fn to_wire_into(&self, out: &mut Vec<u8>) {
        out.reserve(self.wire_len());
        out.extend_from_slice(self.method.as_str().as_bytes());
        out.push(b' ');
        let _ = core::fmt::Write::write_fmt(&mut ByteWriter(out), format_args!("{}", self.uri));
        out.push(b' ');
        out.extend_from_slice(SIP_VERSION.as_bytes());
        out.extend_from_slice(b"\r\n");
        write_headers_and_body(out, &self.headers, &self.body);
    }

    /// Exact length of [`Request::to_wire`]'s output, computed without
    /// serializing. The interned signalling path uses this for frame
    /// sizing so the wire never has to be materialized; equality with
    /// the serialized length is asserted in tests.
    #[must_use]
    pub fn wire_len(&self) -> usize {
        self.method.as_str().len()
            + 1
            + self.uri.wire_len()
            + 1
            + SIP_VERSION.len()
            + 2
            + headers_and_body_wire_len(&self.headers, &self.body)
    }

    /// Build the canonical response to this request with the mandatory
    /// copied headers (Via stack, From, To, Call-ID, CSeq) per RFC 3261
    /// §8.2.6.
    #[must_use]
    pub fn make_response(&self, status: StatusCode) -> Response {
        let mut r = Response::new(status);
        for via in self.headers.get_all(&HeaderName::Via) {
            r.headers.push(HeaderName::Via, via);
        }
        for name in [
            HeaderName::From,
            HeaderName::To,
            HeaderName::CallId,
            HeaderName::CSeq,
        ] {
            if let Some(v) = self.headers.get(&name) {
                r.headers.push(name, v);
            }
        }
        r.headers.set(HeaderName::ContentLength, "0");
        r
    }
}

impl Response {
    /// A new response with empty headers and body.
    #[must_use]
    pub fn new(status: StatusCode) -> Self {
        Response {
            status,
            headers: HeaderMap::new(),
            body: Body::empty(),
        }
    }

    /// Builder: add a header.
    #[must_use]
    pub fn header(mut self, name: HeaderName, value: impl Into<String>) -> Self {
        self.headers.push(name, value);
        self
    }

    /// Builder: set the body and its Content-Type/Content-Length headers.
    #[must_use]
    pub fn with_body(mut self, content_type: &str, body: Vec<u8>) -> Self {
        self.headers.set(HeaderName::ContentType, content_type);
        self.headers
            .set(HeaderName::ContentLength, body.len().to_string());
        self.body = Body::Bytes(body);
        self
    }

    /// Builder: attach a structured SDP body without serializing it. The
    /// Content-Length comes from the analytic [`SdpBody::len`]; the text
    /// form exists only if the message is later written to the wire.
    #[must_use]
    pub fn with_sdp(mut self, sdp: SdpBody) -> Self {
        self.headers.set(HeaderName::ContentType, "application/sdp");
        self.headers
            .set(HeaderName::ContentLength, sdp.len().to_string());
        self.body = Body::Sdp(sdp);
        self
    }

    /// Call-ID header value.
    #[must_use]
    pub fn call_id(&self) -> Option<&str> {
        self.headers.get(&HeaderName::CallId)
    }

    /// The method echoed in the CSeq header — identifies which request this
    /// response answers.
    #[must_use]
    pub fn cseq_method(&self) -> Option<Method> {
        let v = self.headers.get(&HeaderName::CSeq)?;
        Method::from_token(v.split_whitespace().nth(1)?)
    }

    /// CSeq number.
    #[must_use]
    pub fn cseq_number(&self) -> Option<u32> {
        let v = self.headers.get(&HeaderName::CSeq)?;
        v.split_whitespace().next()?.parse().ok()
    }

    /// Top Via branch parameter — the transaction key.
    #[must_use]
    pub fn top_via_branch(&self) -> Option<&str> {
        let via = self.headers.get(&HeaderName::Via)?;
        branch_of(via)
    }

    /// Serialize to the RFC 3261 wire format. Allocates exactly once
    /// (the returned buffer, sized by [`Response::wire_len`]).
    #[must_use]
    pub fn to_wire(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_len());
        self.to_wire_into(&mut out);
        out
    }

    /// Serialize into a caller-supplied buffer (appending), allocating
    /// nothing beyond what the buffer itself must grow.
    pub fn to_wire_into(&self, out: &mut Vec<u8>) {
        out.reserve(self.wire_len());
        out.extend_from_slice(SIP_VERSION.as_bytes());
        out.push(b' ');
        let _ =
            core::fmt::Write::write_fmt(&mut ByteWriter(out), format_args!("{}", self.status.0));
        out.push(b' ');
        out.extend_from_slice(self.status.reason_phrase().as_bytes());
        out.extend_from_slice(b"\r\n");
        write_headers_and_body(out, &self.headers, &self.body);
    }

    /// Exact length of [`Response::to_wire`]'s output, computed without
    /// serializing.
    #[must_use]
    pub fn wire_len(&self) -> usize {
        SIP_VERSION.len()
            + 1
            + decimal_len(u32::from(self.status.0))
            + 1
            + self.status.reason_phrase().len()
            + 2
            + headers_and_body_wire_len(&self.headers, &self.body)
    }
}

impl SipMessage {
    /// Serialize either kind to wire bytes.
    #[must_use]
    pub fn to_wire(&self) -> Vec<u8> {
        match self {
            SipMessage::Request(r) => r.to_wire(),
            SipMessage::Response(r) => r.to_wire(),
        }
    }

    /// Serialize either kind into a caller-supplied buffer (appending).
    pub fn to_wire_into(&self, out: &mut Vec<u8>) {
        match self {
            SipMessage::Request(r) => r.to_wire_into(out),
            SipMessage::Response(r) => r.to_wire_into(out),
        }
    }

    /// Exact serialized length of either kind, without serializing.
    #[must_use]
    pub fn wire_len(&self) -> usize {
        match self {
            SipMessage::Request(r) => r.wire_len(),
            SipMessage::Response(r) => r.wire_len(),
        }
    }

    /// Shared header access.
    #[must_use]
    pub fn headers(&self) -> &HeaderMap {
        match self {
            SipMessage::Request(r) => &r.headers,
            SipMessage::Response(r) => &r.headers,
        }
    }

    /// Mutable header access.
    pub fn headers_mut(&mut self) -> &mut HeaderMap {
        match self {
            SipMessage::Request(r) => &mut r.headers,
            SipMessage::Response(r) => &mut r.headers,
        }
    }

    /// Shared body access.
    #[must_use]
    pub fn body(&self) -> &Body {
        match self {
            SipMessage::Request(r) => &r.body,
            SipMessage::Response(r) => &r.body,
        }
    }

    /// Mutable body access.
    pub fn body_mut(&mut self) -> &mut Body {
        match self {
            SipMessage::Request(r) => &mut r.body,
            SipMessage::Response(r) => &mut r.body,
        }
    }

    /// Call-ID of either kind.
    #[must_use]
    pub fn call_id(&self) -> Option<&str> {
        self.headers().get(&HeaderName::CallId)
    }

    /// The request inside, if any.
    #[must_use]
    pub fn as_request(&self) -> Option<&Request> {
        match self {
            SipMessage::Request(r) => Some(r),
            SipMessage::Response(_) => None,
        }
    }

    /// The response inside, if any.
    #[must_use]
    pub fn as_response(&self) -> Option<&Response> {
        match self {
            SipMessage::Request(_) => None,
            SipMessage::Response(r) => Some(r),
        }
    }
}

impl From<Request> for SipMessage {
    fn from(r: Request) -> Self {
        SipMessage::Request(r)
    }
}

impl From<Response> for SipMessage {
    fn from(r: Response) -> Self {
        SipMessage::Response(r)
    }
}

/// Extract the `branch=` parameter from a Via header value.
#[must_use]
pub fn branch_of(via_value: &str) -> Option<&str> {
    for part in via_value.split(';').skip(1) {
        if let Some(v) = part.trim().strip_prefix("branch=") {
            return Some(v);
        }
    }
    None
}

/// Write a Via header value for this protocol hop into a caller-supplied
/// buffer — the zero-allocation core every Via formatter shares. Reuse
/// one cleared `String` across calls and retransmissions pay nothing.
pub fn write_via(out: &mut impl core::fmt::Write, host: &str, port: u16, branch: &str) {
    let _ = write!(out, "SIP/2.0/UDP {host}:{port};branch={branch}");
}

/// Like [`write_via`] but with the branch supplied as preformatted
/// arguments, so callers composing a branch from parts (`z9hG4bKpbx{n}`)
/// skip the intermediate `String` entirely.
pub fn write_via_args(
    out: &mut impl core::fmt::Write,
    host: &str,
    port: u16,
    branch: core::fmt::Arguments<'_>,
) {
    let _ = write!(out, "SIP/2.0/UDP {host}:{port};branch={branch}");
}

/// Format a Via header value for this protocol hop. Convenience wrapper
/// over [`write_via`] for cold paths; hot paths should write into a
/// reused buffer instead.
#[must_use]
pub fn format_via(host: &str, port: u16, branch: &str) -> String {
    let mut s = String::with_capacity("SIP/2.0/UDP ".len() + host.len() + branch.len() + 16);
    write_via(&mut s, host, port, branch);
    s
}

/// Adapter so `fmt::Display` values (URIs, integers) can be written
/// straight into a wire byte buffer without an intermediate `String`.
struct ByteWriter<'a>(&'a mut Vec<u8>);

impl core::fmt::Write for ByteWriter<'_> {
    fn write_str(&mut self, s: &str) -> core::fmt::Result {
        self.0.extend_from_slice(s.as_bytes());
        Ok(())
    }
}

/// Decimal digit count of `n` (for exact wire-length computation).
pub(crate) fn decimal_len(n: u32) -> usize {
    match n {
        0..=9 => 1,
        10..=99 => 2,
        100..=999 => 3,
        1_000..=9_999 => 4,
        10_000..=99_999 => 5,
        100_000..=999_999 => 6,
        1_000_000..=9_999_999 => 7,
        10_000_000..=99_999_999 => 8,
        100_000_000..=999_999_999 => 9,
        _ => 10,
    }
}

/// Serialized length of the header block, blank line and body.
fn headers_and_body_wire_len(headers: &HeaderMap, body: &Body) -> usize {
    let head: usize = headers
        .iter()
        .map(|(name, value)| name.as_str().len() + 2 + value.len() + 2)
        .sum();
    head + 2 + body.len()
}

fn write_headers_and_body(out: &mut Vec<u8>, headers: &HeaderMap, body: &Body) {
    for (name, value) in headers.iter() {
        out.extend_from_slice(name.as_str().as_bytes());
        out.extend_from_slice(b": ");
        out.extend_from_slice(value.as_bytes());
        out.extend_from_slice(b"\r\n");
    }
    out.extend_from_slice(b"\r\n");
    body.write_into(out);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn invite() -> Request {
        Request::new(Method::Invite, SipUri::parse("sip:bob@pbx").unwrap())
            .header(HeaderName::Via, format_via("10.0.0.2", 5060, "z9hG4bKabc"))
            .header(HeaderName::From, "<sip:alice@pbx>;tag=a1")
            .header(HeaderName::To, "<sip:bob@pbx>")
            .header(HeaderName::CallId, "cid-1@10.0.0.2")
            .header(HeaderName::CSeq, "1 INVITE")
            .header(HeaderName::MaxForwards, "70")
    }

    #[test]
    fn request_wire_format() {
        let w = invite().to_wire();
        let text = String::from_utf8(w).unwrap();
        assert!(text.starts_with("INVITE sip:bob@pbx SIP/2.0\r\n"));
        assert!(text.contains("Call-ID: cid-1@10.0.0.2\r\n"));
        assert!(
            text.ends_with("\r\n\r\n"),
            "empty body ends with blank line"
        );
    }

    #[test]
    fn response_wire_format() {
        let r = Response::new(StatusCode::RINGING).header(HeaderName::CSeq, "1 INVITE");
        let text = String::from_utf8(r.to_wire()).unwrap();
        assert!(text.starts_with("SIP/2.0 180 Ringing\r\n"));
    }

    #[test]
    fn body_sets_length_and_type() {
        let r = invite().with_body("application/sdp", b"v=0\r\n".to_vec());
        assert_eq!(r.headers.get(&HeaderName::ContentLength), Some("5"));
        assert_eq!(
            r.headers.get(&HeaderName::ContentType),
            Some("application/sdp")
        );
        let wire = r.to_wire();
        assert!(wire.ends_with(b"\r\n\r\nv=0\r\n"));
    }

    #[test]
    fn make_response_copies_mandatory_headers() {
        let req = invite();
        let resp = req.make_response(StatusCode::OK);
        assert_eq!(resp.status, StatusCode::OK);
        assert_eq!(resp.headers.get(&HeaderName::CallId), req.call_id());
        assert_eq!(resp.headers.get(&HeaderName::CSeq), Some("1 INVITE"));
        assert_eq!(
            resp.headers.get(&HeaderName::From),
            Some("<sip:alice@pbx>;tag=a1")
        );
        assert_eq!(resp.top_via_branch(), Some("z9hG4bKabc"));
        assert_eq!(resp.headers.get(&HeaderName::ContentLength), Some("0"));
    }

    #[test]
    fn make_response_copies_whole_via_stack() {
        let mut req = invite();
        req.headers
            .push_front(HeaderName::Via, format_via("proxy", 5060, "z9hG4bKproxy"));
        let resp = req.make_response(StatusCode::TRYING);
        let vias: Vec<_> = resp.headers.get_all(&HeaderName::Via).collect();
        assert_eq!(vias.len(), 2);
        assert!(vias[0].contains("proxy"));
    }

    #[test]
    fn cseq_accessors() {
        let req = invite();
        assert_eq!(req.cseq_number(), Some(1));
        let resp = req.make_response(StatusCode::OK);
        assert_eq!(resp.cseq_method(), Some(Method::Invite));
        assert_eq!(resp.cseq_number(), Some(1));
        let empty = Response::new(StatusCode::OK);
        assert_eq!(empty.cseq_method(), None);
        assert_eq!(empty.cseq_number(), None);
    }

    #[test]
    fn branch_extraction() {
        assert_eq!(
            branch_of("SIP/2.0/UDP h:5060;branch=z9hG4bK77;rport"),
            Some("z9hG4bK77")
        );
        assert_eq!(branch_of("SIP/2.0/UDP h:5060"), None);
    }

    #[test]
    fn sip_message_accessors() {
        let m: SipMessage = invite().into();
        assert!(m.as_request().is_some());
        assert!(m.as_response().is_none());
        assert_eq!(m.call_id(), Some("cid-1@10.0.0.2"));
        let mut m2: SipMessage = Response::new(StatusCode::OK).into();
        m2.headers_mut().push(HeaderName::CallId, "x@y");
        assert_eq!(m2.call_id(), Some("x@y"));
        assert!(m2.as_response().is_some());
        assert_eq!(m.to_wire(), m.as_request().unwrap().to_wire());
    }
}
