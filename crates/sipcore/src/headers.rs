//! SIP headers: typed names plus an order-preserving multimap.
//!
//! SIP allows repeated headers (Via stacks, Route sets) and header order is
//! semantically meaningful for them, so the map preserves insertion order
//! and supports multiple values per name. Lookup is linear — SIP messages
//! carry a dozen headers, where a hash map would cost more than it saves
//! (see the workspace's performance notes on small-collection handling).

use serde::{Deserialize, Serialize};

/// A header field name: well-known names are interned as variants so that
/// comparisons are integer-cheap on the hot path; anything else is carried
/// verbatim in `Other`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HeaderName {
    /// `Via` — the response routing stack.
    Via,
    /// `From` — logical caller identity (with `tag`).
    From,
    /// `To` — logical callee identity (with `tag` once a dialog exists).
    To,
    /// `Call-ID` — dialog correlation identifier.
    CallId,
    /// `CSeq` — command sequence number + method.
    CSeq,
    /// `Contact` — where to reach the sender directly.
    Contact,
    /// `Max-Forwards` — hop limit.
    MaxForwards,
    /// `Content-Type` — body MIME type.
    ContentType,
    /// `Content-Length` — body length in bytes.
    ContentLength,
    /// `Expires` — registration lifetime.
    Expires,
    /// `User-Agent` — software identification.
    UserAgent,
    /// `Allow` — supported methods.
    Allow,
    /// `Authorization` — credentials.
    Authorization,
    /// `WWW-Authenticate` — challenge.
    WwwAuthenticate,
    /// `Retry-After` — seconds to wait before retrying (RFC 3261 §20.33),
    /// carried on 503 responses by overload-shedding servers.
    RetryAfter,
    /// `X-Overload-Control` — ad-hoc overload feedback from a downstream
    /// server to its upstream (`rate=<cps>` or `win=<calls>`), attached to
    /// 100 Trying and 503 responses by feedback-driven control laws.
    OverloadControl,
    /// Any other header, with its original name.
    Other(String),
}

impl HeaderName {
    /// Canonical wire name.
    #[must_use]
    pub fn as_str(&self) -> &str {
        match self {
            HeaderName::Via => "Via",
            HeaderName::From => "From",
            HeaderName::To => "To",
            HeaderName::CallId => "Call-ID",
            HeaderName::CSeq => "CSeq",
            HeaderName::Contact => "Contact",
            HeaderName::MaxForwards => "Max-Forwards",
            HeaderName::ContentType => "Content-Type",
            HeaderName::ContentLength => "Content-Length",
            HeaderName::Expires => "Expires",
            HeaderName::UserAgent => "User-Agent",
            HeaderName::Allow => "Allow",
            HeaderName::Authorization => "Authorization",
            HeaderName::WwwAuthenticate => "WWW-Authenticate",
            HeaderName::RetryAfter => "Retry-After",
            HeaderName::OverloadControl => "X-Overload-Control",
            HeaderName::Other(s) => s,
        }
    }

    /// True when `token` names this header on the wire: canonical or
    /// compact form, case-insensitive per RFC 3261 §7.3.1. Unlike
    /// [`HeaderName::from_wire`] this never allocates, which is what the
    /// lazy [`crate::wire::WireMessage`] view needs on the hot path.
    #[must_use]
    pub fn matches_wire(&self, token: &str) -> bool {
        let eq = |s: &str| token.eq_ignore_ascii_case(s);
        match self {
            HeaderName::Via => eq("via") || eq("v"),
            HeaderName::From => eq("from") || eq("f"),
            HeaderName::To => eq("to") || eq("t"),
            HeaderName::CallId => eq("call-id") || eq("i"),
            HeaderName::CSeq => eq("cseq"),
            HeaderName::Contact => eq("contact") || eq("m"),
            HeaderName::MaxForwards => eq("max-forwards"),
            HeaderName::ContentType => eq("content-type") || eq("c"),
            HeaderName::ContentLength => eq("content-length") || eq("l"),
            HeaderName::Expires => eq("expires"),
            HeaderName::UserAgent => eq("user-agent"),
            HeaderName::Allow => eq("allow"),
            HeaderName::Authorization => eq("authorization"),
            HeaderName::WwwAuthenticate => eq("www-authenticate"),
            HeaderName::RetryAfter => eq("retry-after"),
            HeaderName::OverloadControl => eq("x-overload-control"),
            HeaderName::Other(s) => eq(s),
        }
    }

    /// Parse a header name (case-insensitive per RFC 3261 §7.3.1).
    #[must_use]
    pub fn from_wire(s: &str) -> HeaderName {
        match s.to_ascii_lowercase().as_str() {
            "via" | "v" => HeaderName::Via,
            "from" | "f" => HeaderName::From,
            "to" | "t" => HeaderName::To,
            "call-id" | "i" => HeaderName::CallId,
            "cseq" => HeaderName::CSeq,
            "contact" | "m" => HeaderName::Contact,
            "max-forwards" => HeaderName::MaxForwards,
            "content-type" | "c" => HeaderName::ContentType,
            "content-length" | "l" => HeaderName::ContentLength,
            "expires" => HeaderName::Expires,
            "user-agent" => HeaderName::UserAgent,
            "allow" => HeaderName::Allow,
            "authorization" => HeaderName::Authorization,
            "www-authenticate" => HeaderName::WwwAuthenticate,
            "retry-after" => HeaderName::RetryAfter,
            "x-overload-control" => HeaderName::OverloadControl,
            _ => HeaderName::Other(s.to_owned()),
        }
    }
}

impl core::fmt::Display for HeaderName {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// An insertion-ordered multimap of headers.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeaderMap {
    entries: Vec<(HeaderName, String)>,
}

impl HeaderMap {
    /// An empty map.
    #[must_use]
    pub fn new() -> Self {
        HeaderMap::default()
    }

    /// Append a header (keeps existing occurrences).
    pub fn push(&mut self, name: HeaderName, value: impl Into<String>) {
        self.entries.push((name, value.into()));
    }

    /// Replace all occurrences of `name` with a single value (appends if
    /// absent).
    pub fn set(&mut self, name: HeaderName, value: impl Into<String>) {
        let value = value.into();
        let mut kept = false;
        self.entries.retain_mut(|(n, v)| {
            if *n == name {
                if kept {
                    false
                } else {
                    kept = true;
                    *v = value.clone();
                    true
                }
            } else {
                true
            }
        });
        if !kept {
            self.entries.push((name, value));
        }
    }

    /// First value for `name`.
    #[must_use]
    pub fn get(&self, name: &HeaderName) -> Option<&str> {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// All values for `name`, in order.
    pub fn get_all<'a>(&'a self, name: &'a HeaderName) -> impl Iterator<Item = &'a str> + 'a {
        self.entries
            .iter()
            .filter(move |(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Remove the **first** occurrence of `name`, returning its value.
    /// (Used to pop the top Via when routing a response.)
    pub fn remove_first(&mut self, name: &HeaderName) -> Option<String> {
        let idx = self.entries.iter().position(|(n, _)| n == name)?;
        Some(self.entries.remove(idx).1)
    }

    /// Insert at the front (used to push a Via when forwarding a request).
    pub fn push_front(&mut self, name: HeaderName, value: impl Into<String>) {
        self.entries.insert(0, (name, value.into()));
    }

    /// Number of header fields (counting repeats).
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no headers are present.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate all (name, value) pairs in order.
    pub fn iter(&self) -> impl Iterator<Item = (&HeaderName, &str)> {
        self.entries.iter().map(|(n, v)| (n, v.as_str()))
    }

    /// True if any occurrence of `name` exists.
    #[must_use]
    pub fn contains(&self, name: &HeaderName) -> bool {
        self.entries.iter().any(|(n, _)| n == name)
    }
}

/// Extract a `tag=` parameter from a From/To header value.
///
/// Only header-level parameters count: with a bracketed `<sip:...>` URI,
/// parameters inside the brackets belong to the URI, not the header.
#[must_use]
pub fn tag_of(header_value: &str) -> Option<&str> {
    let param_region = match header_value.rfind('>') {
        Some(idx) => &header_value[idx + 1..],
        None => header_value,
    };
    for part in param_region.split(';').skip(1) {
        if let Some(v) = part.trim().strip_prefix("tag=") {
            return Some(v);
        }
    }
    None
}

/// Append (or replace) a `tag=` parameter on a From/To header value.
#[must_use]
pub fn with_tag(header_value: &str, tag: &str) -> String {
    match tag_of(header_value) {
        Some(_) => {
            // Replace existing tag.
            let parts: Vec<&str> = header_value.split(';').collect();
            let mut out = String::with_capacity(header_value.len());
            out.push_str(parts[0]);
            for part in &parts[1..] {
                out.push(';');
                if part.trim().starts_with("tag=") {
                    out.push_str(&format!("tag={tag}"));
                } else {
                    out.push_str(part);
                }
            }
            out
        }
        None => format!("{header_value};tag={tag}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_names_round_trip() {
        for name in [
            HeaderName::Via,
            HeaderName::From,
            HeaderName::To,
            HeaderName::CallId,
            HeaderName::CSeq,
            HeaderName::Contact,
            HeaderName::MaxForwards,
            HeaderName::ContentType,
            HeaderName::ContentLength,
            HeaderName::Expires,
            HeaderName::UserAgent,
            HeaderName::Allow,
            HeaderName::Authorization,
            HeaderName::WwwAuthenticate,
            HeaderName::RetryAfter,
            HeaderName::OverloadControl,
        ] {
            assert_eq!(HeaderName::from_wire(name.as_str()), name);
        }
    }

    #[test]
    fn case_insensitive_and_compact_forms() {
        assert_eq!(HeaderName::from_wire("CALL-ID"), HeaderName::CallId);
        assert_eq!(HeaderName::from_wire("i"), HeaderName::CallId);
        assert_eq!(HeaderName::from_wire("v"), HeaderName::Via);
        assert_eq!(HeaderName::from_wire("f"), HeaderName::From);
        assert_eq!(
            HeaderName::from_wire("X-Custom"),
            HeaderName::Other("X-Custom".to_owned())
        );
    }

    #[test]
    fn matches_wire_agrees_with_from_wire() {
        for token in [
            "Via",
            "v",
            "FROM",
            "f",
            "To",
            "t",
            "call-id",
            "I",
            "CSeq",
            "Contact",
            "m",
            "Max-Forwards",
            "content-type",
            "c",
            "Content-Length",
            "l",
            "expires",
            "User-Agent",
            "ALLOW",
            "Authorization",
            "WWW-Authenticate",
            "Retry-After",
            "X-Overload-Control",
            "x-overload-control",
            "X-Custom",
        ] {
            let name = HeaderName::from_wire(token);
            assert!(name.matches_wire(token), "{name:?} should match {token:?}");
        }
        assert!(!HeaderName::Via.matches_wire("from"));
        assert!(!HeaderName::CallId.matches_wire("cseq"));
        assert!(HeaderName::Other("X-Custom".into()).matches_wire("x-custom"));
    }

    #[test]
    fn multimap_preserves_order_and_repeats() {
        let mut h = HeaderMap::new();
        h.push(HeaderName::Via, "SIP/2.0/UDP a;branch=z9hG4bK1");
        h.push(HeaderName::From, "<sip:alice@x>");
        h.push(HeaderName::Via, "SIP/2.0/UDP b;branch=z9hG4bK2");
        assert_eq!(h.len(), 3);
        let vias: Vec<_> = h.get_all(&HeaderName::Via).collect();
        assert_eq!(vias.len(), 2);
        assert!(vias[0].contains(";branch=z9hG4bK1"));
        assert!(vias[1].contains(";branch=z9hG4bK2"));
        assert_eq!(h.get(&HeaderName::Via).unwrap(), vias[0], "get = first");
    }

    #[test]
    fn set_collapses_repeats() {
        let mut h = HeaderMap::new();
        h.push(HeaderName::Via, "one");
        h.push(HeaderName::Via, "two");
        h.set(HeaderName::Via, "only");
        assert_eq!(h.get_all(&HeaderName::Via).count(), 1);
        assert_eq!(h.get(&HeaderName::Via), Some("only"));
        h.set(HeaderName::To, "fresh");
        assert_eq!(h.get(&HeaderName::To), Some("fresh"));
    }

    #[test]
    fn via_stack_discipline() {
        let mut h = HeaderMap::new();
        h.push(HeaderName::Via, "client");
        h.push_front(HeaderName::Via, "proxy");
        assert_eq!(h.get(&HeaderName::Via), Some("proxy"));
        let popped = h.remove_first(&HeaderName::Via).unwrap();
        assert_eq!(popped, "proxy");
        assert_eq!(h.get(&HeaderName::Via), Some("client"));
        assert!(h.remove_first(&HeaderName::Expires).is_none());
    }

    #[test]
    fn contains_and_iter() {
        let mut h = HeaderMap::new();
        assert!(h.is_empty());
        h.push(HeaderName::CallId, "abc@host");
        assert!(h.contains(&HeaderName::CallId));
        assert!(!h.contains(&HeaderName::CSeq));
        let all: Vec<_> = h.iter().collect();
        assert_eq!(all, vec![(&HeaderName::CallId, "abc@host")]);
    }

    #[test]
    fn tag_extraction_and_injection() {
        assert_eq!(tag_of("<sip:a@x>;tag=77"), Some("77"));
        assert_eq!(tag_of("<sip:a@x>"), None);
        assert_eq!(tag_of("<sip:a@x;tag=inner-uri-not-counted>"), None);
        let v = with_tag("<sip:a@x>", "99");
        assert_eq!(tag_of(&v), Some("99"));
        // Replacing an existing tag.
        let v2 = with_tag(&v, "55");
        assert_eq!(tag_of(&v2), Some("55"));
        assert!(!v2.contains("tag=99"));
    }
}
