//! Pooled serialization buffers: a free-list of `Vec<u8>` scratch
//! buffers so retransmissions and freshly built requests reuse capacity
//! instead of allocating a new buffer per message.
//!
//! The pool is deliberately dumb: LIFO reuse (the most recently released
//! buffer is the warmest), a cap on how many free buffers are kept so a
//! retransmission storm cannot turn into a memory leak, and counters so
//! tests can prove reuse actually happens.

use crate::message::SipMessage;

/// Default number of free buffers kept for reuse.
const DEFAULT_MAX_FREE: usize = 32;

/// A free-list of byte buffers for wire serialization.
#[derive(Debug)]
pub struct BufferPool {
    free: Vec<Vec<u8>>,
    max_free: usize,
    acquired: u64,
    reused: u64,
}

impl Default for BufferPool {
    fn default() -> Self {
        BufferPool::new(DEFAULT_MAX_FREE)
    }
}

impl BufferPool {
    /// A pool keeping at most `max_free` released buffers.
    #[must_use]
    pub fn new(max_free: usize) -> Self {
        BufferPool {
            free: Vec::new(),
            max_free,
            acquired: 0,
            reused: 0,
        }
    }

    /// An empty buffer, reusing released capacity when available.
    pub fn acquire(&mut self) -> Vec<u8> {
        self.acquired += 1;
        match self.free.pop() {
            Some(mut buf) => {
                self.reused += 1;
                buf.clear();
                buf
            }
            None => Vec::new(),
        }
    }

    /// Return a buffer to the pool for later reuse. Buffers beyond the
    /// free-list cap are dropped.
    pub fn release(&mut self, buf: Vec<u8>) {
        if self.free.len() < self.max_free {
            self.free.push(buf);
        }
    }

    /// Serialize `msg` into a pooled buffer (exact-capacity on first
    /// use, zero-allocation once the buffer has grown to the working
    /// set's message size). Release the buffer back with
    /// [`BufferPool::release`] after the bytes hit the wire.
    pub fn wire_of(&mut self, msg: &SipMessage) -> Vec<u8> {
        let mut buf = self.acquire();
        msg.to_wire_into(&mut buf);
        buf
    }

    /// (total acquires, acquires served from the free list).
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (self.acquired, self.reused)
    }

    /// Buffers currently available for reuse.
    #[must_use]
    pub fn free_count(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::headers::HeaderName;
    use crate::message::{format_via, Request};
    use crate::method::Method;
    use crate::uri::SipUri;

    fn msg() -> SipMessage {
        Request::new(Method::Invite, SipUri::new("bob", "pbx"))
            .header(HeaderName::Via, format_via("h", 5060, "z9hG4bKp"))
            .header(HeaderName::CallId, "cid-pool")
            .header(HeaderName::CSeq, "1 INVITE")
            .into()
    }

    #[test]
    fn buffers_are_reused_with_their_capacity() {
        let mut pool = BufferPool::default();
        let wire = pool.wire_of(&msg());
        let cap = wire.capacity();
        assert_eq!(wire, msg().to_wire(), "pooled bytes match plain to_wire");
        pool.release(wire);
        let again = pool.wire_of(&msg());
        assert!(
            again.capacity() >= cap,
            "second serialization reuses the released capacity"
        );
        assert_eq!(pool.stats(), (2, 1), "one acquire was served from free");
    }

    #[test]
    fn free_list_is_bounded() {
        let mut pool = BufferPool::new(2);
        for _ in 0..5 {
            pool.release(Vec::with_capacity(64));
        }
        assert_eq!(pool.free_count(), 2, "cap enforced");
    }

    #[test]
    fn acquire_clears_stale_contents() {
        let mut pool = BufferPool::default();
        pool.release(b"stale".to_vec());
        let buf = pool.acquire();
        assert!(buf.is_empty());
    }
}
