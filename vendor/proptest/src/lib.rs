//! Offline stand-in for `proptest 1` (see `vendor/README.md`).
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro, [`Strategy`] over numeric ranges and
//! `any::<T>()`, the `collection`/`option`/`sample` strategy modules, and
//! the `prop_assert*` family. Each test runs a fixed number of cases drawn
//! from a deterministic per-test RNG (seeded from the test's name), so
//! failures reproduce across runs. Unlike real proptest there is **no
//! shrinking**: a failing case panics with the sampled inputs printed.

#![forbid(unsafe_code)]

use std::fmt::Debug;

/// Deterministic SplitMix64 generator for case sampling.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one case, derived from the test name and case index.
    #[must_use]
    pub fn for_case(test_name: &str, case: u64) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the message explains which.
    Fail(String),
    /// `prop_assume!` filtered this case out.
    Reject,
}

impl TestCaseError {
    /// A failed case with the given message.
    #[must_use]
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected (assumption-violating) case.
    #[must_use]
    pub fn reject() -> Self {
        TestCaseError::Reject
    }
}

/// Result type the generated case closures return.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A value generator.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

// --- numeric range strategies ----------------------------------------------

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128) - (self.start as i128);
                let offset = (rng.next_u64() as i128).rem_euclid(span);
                ((self.start as i128) + offset) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128) - (start as i128) + 1;
                let offset = (rng.next_u64() as i128).rem_euclid(span);
                ((start as i128) + offset) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let unit = rng.unit_f64() as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
impl_float_range!(f32, f64);

// --- regex string strategies -----------------------------------------------

/// String literals are strategies generating matching strings, as in
/// proptest. Supported subset: literal characters, character classes with
/// ranges (`[a-z0-9.]`), and quantifiers `{m}`, `{m,n}`, `?`, `*`, `+`
/// (the unbounded ones capped at 8 repeats).
impl Strategy for str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let chars: Vec<char> = self.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            // One atom: a class or a literal character.
            let alphabet: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed `[` in regex strategy {self:?}"));
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j], chars[j + 2]);
                        set.extend((lo..=hi).filter(|c| c.is_ascii()));
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            assert!(
                !alphabet.is_empty(),
                "empty class in regex strategy {self:?}"
            );
            // Optional quantifier.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed `{{` in regex strategy {self:?}"));
                let spec: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match spec.split_once(',') {
                    Some((m, n)) => (
                        m.parse::<usize>().expect("bad quantifier"),
                        n.parse::<usize>().expect("bad quantifier"),
                    ),
                    None => {
                        let m = spec.parse::<usize>().expect("bad quantifier");
                        (m, m)
                    }
                }
            } else if i < chars.len() && chars[i] == '?' {
                i += 1;
                (0, 1)
            } else if i < chars.len() && chars[i] == '*' {
                i += 1;
                (0, 8)
            } else if i < chars.len() && chars[i] == '+' {
                i += 1;
                (1, 8)
            } else {
                (1, 1)
            };
            let count = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..count {
                out.push(alphabet[rng.below(alphabet.len() as u64) as usize]);
            }
        }
        out
    }
}

// --- any::<T>() ------------------------------------------------------------

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, wide-ranging magnitudes.
        (rng.unit_f64() * 2.0 - 1.0) * 1e12
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// The canonical strategy for `T`, mirroring `proptest::arbitrary::any`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// --- tuples ----------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

// --- strategy modules ------------------------------------------------------

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a size drawn from `sizes`.
    pub struct VecStrategy<S> {
        elem: S,
        sizes: Range<usize>,
    }

    /// `vec(element, sizes)` — a vector of 'element' draws.
    pub fn vec<S: Strategy>(elem: S, sizes: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, sizes }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.sizes.clone().sample(rng);
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<T>`.
    pub struct BTreeSetStrategy<S> {
        elem: S,
        sizes: Range<usize>,
    }

    /// `btree_set(element, sizes)` — duplicates collapse, as in proptest.
    pub fn btree_set<S>(elem: S, sizes: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { elem, sizes }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.sizes.clone().sample(rng);
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Option strategies (`proptest::option`).
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy for `Option<T>`.
    pub struct OptionStrategy<S>(S);

    /// `of(strategy)` — `None` roughly one case in five.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(5) == 0 {
                None
            } else {
                Some(self.0.sample(rng))
            }
        }
    }
}

/// Sampling strategies (`proptest::sample`).
pub mod sample {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;

    /// Strategy choosing among fixed values.
    pub struct Select<T>(Vec<T>);

    /// `select(values)` — uniform choice from a non-empty list.
    pub fn select<T: Clone + Debug>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "select() needs at least one value");
        Select(values)
    }

    impl<T: Clone + Debug> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.0.len() as u64) as usize;
            self.0[i].clone()
        }
    }
}

/// Test-loop driver used by the [`proptest!`] expansion.
pub mod test_runner {
    use super::{TestCaseError, TestRng};

    /// Cases per property; a fraction of proptest's 256 default, enough to
    /// exercise the domains while keeping the suite quick.
    pub const CASES: u64 = 64;

    /// Run `case` over [`CASES`] deterministic samples, panicking on the
    /// first failure with the sampled inputs.
    pub fn run<F>(test_name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng, &mut Vec<String>) -> Result<(), TestCaseError>,
    {
        for i in 0..CASES {
            let mut rng = TestRng::for_case(test_name, i);
            let mut inputs = Vec::new();
            match case(&mut rng, &mut inputs) {
                Ok(()) => {}
                // Rejected cases are simply skipped (no re-draw; the next
                // case index has fresh samples anyway).
                Err(TestCaseError::Reject) => {}
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest `{test_name}` failed at case {i}: {msg}\n  inputs: {}",
                        inputs.join(", ")
                    );
                }
            }
        }
    }
}

/// Everything a property-test module conventionally imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Strategy,
        TestCaseError, TestCaseResult,
    };
}

/// Define property tests: `proptest! { #[test] fn f(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(stringify!($name), |__rng, __inputs| {
                    $(
                        let __sampled = $crate::Strategy::sample(&($strat), __rng);
                        __inputs.push(format!("{} = {:?}", stringify!($arg), __sampled));
                        let $arg = __sampled;
                    )+
                    $body
                    Ok(())
                });
            }
        )+
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fail the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    }};
}

/// Fail the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                l, r
            )));
        }
    }};
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::reject());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::for_case("ranges", 0);
        for _ in 0..1000 {
            let x = crate::Strategy::sample(&(10u16..20), &mut rng);
            assert!((10..20).contains(&x));
            let y = crate::Strategy::sample(&(-5i16..5), &mut rng);
            assert!((-5..5).contains(&y));
            let f = crate::Strategy::sample(&(-1.5f64..2.5), &mut rng);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn determinism_per_name() {
        let sample = |case| {
            let mut rng = crate::TestRng::for_case("d", case);
            crate::Strategy::sample(&crate::collection::vec(0u32..100, 1..10), &mut rng)
        };
        assert_eq!(sample(3), sample(3));
        assert_ne!(sample(1), sample(2));
    }

    proptest! {
        /// The macro itself: samples satisfy their strategies.
        #[test]
        fn macro_samples_in_bounds(x in 1u32..50, xs in crate::collection::vec(0u8..10, 0..5)) {
            prop_assert!(x >= 1 && x < 50);
            prop_assert!(xs.len() < 5);
            prop_assert_eq!(xs.iter().filter(|&&b| b >= 10).count(), 0);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }
}
