//! Offline stand-in for `criterion 0.5` (see `vendor/README.md`).
//!
//! Keeps the workspace's `benches/` targets compiling and runnable without
//! crates.io. Instead of statistical sampling, each benchmark routine is
//! executed a handful of times and its mean wall-clock time printed — a
//! smoke run, not a measurement. The flag/ignore behaviour of the real
//! harness is not modelled.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortises setup; ignored by this shim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh batch every iteration.
    PerIteration,
}

/// Throughput annotation; recorded but only echoed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Passed to benchmark closures; runs the routine and accumulates time.
pub struct Bencher {
    iterations: u32,
    elapsed: Duration,
}

impl Bencher {
    fn new(iterations: u32) -> Self {
        Bencher {
            iterations,
            elapsed: Duration::ZERO,
        }
    }

    /// Time `routine`, called `iterations` times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` over inputs produced by `setup` (setup excluded).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }

    fn report(&self, name: &str) {
        let per_iter = self.elapsed.as_secs_f64() / f64::from(self.iterations.max(1));
        println!(
            "bench {name:<40} {:>12.3} ms/iter (smoke run)",
            per_iter * 1e3
        );
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    name: String,
    iterations: u32,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Smaller sample count hint — the shim keeps its own tiny count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Measurement-time hint; ignored.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Throughput annotation; echoed only.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<R: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: R) -> &mut Self {
        let mut b = Bencher::new(self.iterations);
        f(&mut b);
        b.report(&format!("{}/{id}", self.name));
        self
    }

    /// End the group (no-op).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Shim iteration count: enough to amortise the timer, small enough
    /// that heavyweight simulation benches stay a smoke run.
    const ITERATIONS: u32 = 3;

    /// Run one stand-alone benchmark.
    pub fn bench_function<R: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: R) -> &mut Self {
        let mut b = Bencher::new(Self::ITERATIONS);
        f(&mut b);
        b.report(id);
        self
    }

    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            iterations: Self::ITERATIONS,
            _criterion: self,
        }
    }

    /// Parse command-line configuration — accepted and ignored.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Define a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` running the given groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_shim_runs_routines() {
        let mut calls = 0u32;
        let mut c = Criterion::default();
        c.bench_function("counting", |b| b.iter(|| calls += 1));
        assert_eq!(calls, Criterion::ITERATIONS);

        let mut batched = 0u32;
        let mut g = c.benchmark_group("group");
        g.sample_size(10)
            .throughput(Throughput::Elements(1))
            .bench_function("batched", |b| {
                b.iter_batched(|| 2u32, |x| batched += x, BatchSize::SmallInput)
            });
        g.finish();
        assert_eq!(batched, 2 * Criterion::ITERATIONS);
    }
}
