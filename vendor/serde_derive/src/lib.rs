//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored
//! serde subset (`vendor/serde`).
//!
//! Implemented without `syn`/`quote` (the sandbox has no crates.io): a
//! small hand parser walks the item's token stream, extracts the shape
//! (named/tuple/unit struct, or enum of unit/newtype/tuple/struct
//! variants), and the generated impls are assembled as source text. The
//! encoding mirrors serde's defaults:
//!
//! * named struct  -> object of fields;
//! * newtype struct -> the inner value, transparently;
//! * tuple struct  -> array;
//! * unit variant  -> the variant name as a string;
//! * data variant  -> one-entry object `{ "Variant": <payload> }`.
//!
//! Generic items and `#[serde(...)]` attributes are not supported — the
//! workspace uses neither — and hitting one produces a compile error
//! rather than silently wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Which::Serialize)
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Which::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Which {
    Serialize,
    Deserialize,
}

enum Shape {
    /// `struct S;`
    UnitStruct,
    /// `struct S { a: T, .. }` — field names.
    NamedStruct(Vec<String>),
    /// `struct S(T, ..);` — field count.
    TupleStruct(usize),
    /// `enum E { .. }`
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn expand(input: TokenStream, which: Which) -> TokenStream {
    match parse_item(input) {
        Ok((name, shape)) => generate(&name, &shape, which).parse().unwrap(),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

// --- parsing ---------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<(String, Shape), String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes (`#[...]`, including doc comments) and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 2; // `#` + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // `pub(crate)` etc.
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde_derive: expected `struct` or `enum`".into()),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde_derive: expected item name".into()),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde_derive: generic type `{name}` is not supported by the vendored derive"
        ));
    }

    match kind.as_str() {
        "struct" => match tokens.get(i) {
            None => Ok((name, Shape::UnitStruct)),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok((name, Shape::UnitStruct)),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok((name, Shape::NamedStruct(parse_named_fields(g.stream())?)))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok((name, Shape::TupleStruct(count_tuple_fields(g.stream()))))
            }
            _ => Err(format!(
                "serde_derive: unsupported struct body for `{name}`"
            )),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok((name, Shape::Enum(parse_variants(g.stream())?)))
            }
            _ => Err(format!("serde_derive: expected enum body for `{name}`")),
        },
        other => Err(format!("serde_derive: cannot derive for `{other}` items")),
    }
}

/// Field names of `{ a: T, b: U }`, skipping attributes and visibility;
/// commas inside `<...>` do not split fields.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip attributes and visibility before the field name.
        loop {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    i += 1;
                    if let Some(TokenTree::Group(g)) = tokens.get(i) {
                        if g.delimiter() == Delimiter::Parenthesis {
                            i += 1;
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break; // trailing comma
        };
        fields.push(id.to_string());
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err("serde_derive: expected `:` after field name".into()),
        }
        i = skip_type(&tokens, i);
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    Ok(fields)
}

/// Advance past a type, stopping at a top-level `,` (or end of stream).
fn skip_type(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut angle_depth = 0usize;
    while i < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[i] {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => break,
                _ => {}
            }
        }
        i += 1;
    }
    i
}

/// Count the types in `(T, U, ...)`, skipping per-field attrs/visibility.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        loop {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    i += 1;
                    if let Some(TokenTree::Group(g)) = tokens.get(i) {
                        if g.delimiter() == Delimiter::Parenthesis {
                            i += 1;
                        }
                    }
                }
                _ => break,
            }
        }
        if i >= tokens.len() {
            break;
        }
        count += 1;
        i = skip_type(&tokens, i);
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2;
        }
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break; // trailing comma
        };
        let name = id.to_string();
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantFields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantFields::Named(parse_named_fields(g.stream())?)
            }
            _ => VariantFields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) up to the next comma.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            while i < tokens.len()
                && !matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',')
            {
                i += 1;
            }
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

// --- code generation -------------------------------------------------------

fn generate(name: &str, shape: &Shape, which: Which) -> String {
    match which {
        Which::Serialize => gen_serialize(name, shape),
        Which::Deserialize => gen_deserialize(name, shape),
    }
}

fn gen_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::UnitStruct => "serde::Value::Null".to_owned(),
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(String::from({f:?}), serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("serde::Value::Map(vec![{}])", entries.join(", "))
        }
        Shape::TupleStruct(1) => "serde::Serialize::to_value(&self.0)".to_owned(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!("serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        VariantFields::Unit => format!(
                            "{name}::{vn} => serde::Value::Str(String::from({vn:?}))"
                        ),
                        VariantFields::Tuple(1) => format!(
                            "{name}::{vn}(f0) => serde::Value::Map(vec![(String::from({vn:?}), serde::Serialize::to_value(f0))])"
                        ),
                        VariantFields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => serde::Value::Map(vec![(String::from({vn:?}), serde::Value::Array(vec![{}]))])",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantFields::Named(fields) => {
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(String::from({f:?}), serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {} }} => serde::Value::Map(vec![(String::from({vn:?}), serde::Value::Map(vec![{}]))])",
                                fields.join(", "),
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::UnitStruct => format!("Ok({name})"),
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: serde::Deserialize::from_value(serde::get_field(entries, {f:?})?)?"
                    )
                })
                .collect();
            format!(
                "let entries = v.as_map().ok_or_else(|| serde::Error::custom(\"expected map for {name}\"))?;\n\
                 Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::TupleStruct(1) => {
            format!("Ok({name}(serde::Deserialize::from_value(v)?))")
        }
        Shape::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|k| format!("serde::Deserialize::from_value(&items[{k}])?"))
                .collect();
            format!(
                "let items = v.as_array().ok_or_else(|| serde::Error::custom(\"expected array for {name}\"))?;\n\
                 if items.len() != {n} {{ return Err(serde::Error::custom(\"wrong tuple arity for {name}\")); }}\n\
                 Ok({name}({}))",
                inits.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, VariantFields::Unit))
                .map(|v| format!("{:?} => Ok({name}::{}),", v.name, v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        VariantFields::Unit => None,
                        VariantFields::Tuple(1) => Some(format!(
                            "{vn:?} => Ok({name}::{vn}(serde::Deserialize::from_value(payload)?)),"
                        )),
                        VariantFields::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|k| format!("serde::Deserialize::from_value(&items[{k}])?"))
                                .collect();
                            Some(format!(
                                "{vn:?} => {{\n\
                                     let items = payload.as_array().ok_or_else(|| serde::Error::custom(\"expected array payload\"))?;\n\
                                     if items.len() != {n} {{ return Err(serde::Error::custom(\"wrong variant arity\")); }}\n\
                                     Ok({name}::{vn}({}))\n\
                                 }},",
                                inits.join(", ")
                            ))
                        }
                        VariantFields::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: serde::Deserialize::from_value(serde::get_field(entries, {f:?})?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "{vn:?} => {{\n\
                                     let entries = payload.as_map().ok_or_else(|| serde::Error::custom(\"expected map payload\"))?;\n\
                                     Ok({name}::{vn} {{ {} }})\n\
                                 }},",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match v {{\n\
                     serde::Value::Str(s) => match s.as_str() {{\n\
                         {}\n\
                         other => Err(serde::Error::custom(format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                     }},\n\
                     serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                         let (tag, payload) = &entries[0];\n\
                         match tag.as_str() {{\n\
                             {}\n\
                             other => Err(serde::Error::custom(format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                         }}\n\
                     }},\n\
                     _ => Err(serde::Error::custom(\"expected variant of {name}\")),\n\
                 }}",
                unit_arms.join("\n"),
                data_arms.join("\n")
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl serde::Deserialize for {name} {{\n\
             fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
