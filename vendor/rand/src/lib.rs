//! Offline stand-in for the `rand 0.8` facade.
//!
//! The workspace builds in sandboxes with no crates.io access, so the
//! handful of external APIs it consumes are vendored here (see
//! `vendor/README.md`). This crate provides exactly the subset of `rand`
//! the workspace touches: the [`RngCore`] trait and its fallible-fill
//! [`Error`] type. All randomness in the repo flows through
//! `des::rng::StreamRng`, which implements this trait itself — nothing
//! here generates numbers.

#![forbid(unsafe_code)]

use std::fmt;

/// A random number generator core, mirroring `rand::RngCore`.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible fill; infallible generators forward to [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error>;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// Error type for fallible RNG operations (always opaque here).
#[derive(Debug)]
pub struct Error {
    msg: &'static str,
}

impl Error {
    /// An error with a static description.
    #[must_use]
    pub fn new(msg: &'static str) -> Self {
        Error { msg }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.msg)
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counting(u64);

    impl RngCore for Counting {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 += 1;
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest {
                *b = self.next_u64() as u8;
            }
        }
        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }

    #[test]
    fn blanket_impls_forward() {
        let mut rng = Counting(0);
        assert_eq!((&mut rng).next_u64(), 1);
        let mut boxed: Box<dyn RngCore> = Box::new(rng);
        assert_eq!(boxed.next_u32(), 2);
        let mut buf = [0u8; 4];
        boxed.try_fill_bytes(&mut buf).unwrap();
        assert_eq!(buf, [3, 4, 5, 6]);
    }
}
