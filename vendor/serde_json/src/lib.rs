//! Offline stand-in for `serde_json 1` — print and parse JSON text over
//! the vendored `serde::Value` model (see `vendor/README.md`).
//!
//! Output matches serde_json's conventions: two-space pretty indentation,
//! floats printed with a decimal point, non-finite floats as `null`,
//! standard string escapes.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;

pub use serde::Error;

/// Serialize to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to human-readable JSON text (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

/// Deserialize from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse(text)?;
    T::from_value(&value)
}

// --- printer ---------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => {
            let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
        }
        Value::UInt(n) => {
            let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
        }
        Value::Float(x) => {
            if x.is_finite() {
                // `{:?}` keeps a decimal point on integral floats (1.0, not 1),
                // matching serde_json.
                let _ = fmt::Write::write_fmt(out, format_args!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parser ----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse JSON text into a [`Value`].
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom("trailing characters after JSON value"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(Error::custom(format!("unexpected byte {}", self.pos))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::custom("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::custom("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::custom("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input came in as &str, so
                    // it is already valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let text =
                        std::str::from_utf8(rest).map_err(|_| Error::custom("invalid UTF-8"))?;
                    let c = text.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::custom("invalid number"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::custom("invalid number"))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::custom("invalid number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        for text in ["null", "true", "false", "0", "-17", "3.5", "\"hi\\n\""] {
            let v = parse(text).unwrap();
            let printed = to_string(&v).unwrap();
            assert_eq!(parse(&printed).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn pretty_output_shape() {
        let v = parse(r#"{"a": [1, 2], "b": {"c": 1.0}}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(
            pretty.contains("\n  \"a\": [\n    1,\n    2\n  ]"),
            "{pretty}"
        );
        assert!(pretty.contains("\"c\": 1.0"), "{pretty}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("nulL").is_err());
    }

    #[test]
    fn typed_round_trip() {
        let xs: Vec<(f64, u32)> = vec![(1.25, 2), (-4.0, 9)];
        let text = to_string_pretty(&xs).unwrap();
        let back: Vec<(f64, u32)> = from_str(&text).unwrap();
        assert_eq!(back, xs);
    }
}
