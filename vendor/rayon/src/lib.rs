//! Offline stand-in for `rayon 1` (see `vendor/README.md`).
//!
//! `par_iter()`/`into_par_iter()` here return the corresponding *standard*
//! iterators, so downstream `.map(...).sum()`/`.collect()` chains compile
//! unchanged and run sequentially. The workspace's parallel sweeps carry
//! per-run RNG streams and are order-independent, so results are
//! bit-identical to the parallel execution — only wall-clock differs.

#![forbid(unsafe_code)]

/// The traits rayon users import as `use rayon::prelude::*;`.
pub mod prelude {
    /// `into_par_iter()` — sequential here.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        /// Consume `self`, yielding an iterator over its items.
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<T: IntoIterator + Sized> IntoParallelIterator for T {}

    /// `par_iter()` — sequential here.
    pub trait IntoParallelRefIterator<'data> {
        /// The borrowed iterator type.
        type Iter: Iterator;

        /// Iterate over `&self`'s items.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, C: ?Sized + 'data> IntoParallelRefIterator<'data> for C
    where
        &'data C: IntoIterator,
    {
        type Iter = <&'data C as IntoIterator>::IntoIter;

        fn par_iter(&'data self) -> Self::Iter {
            self.into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let xs = vec![1u64, 2, 3, 4];
        let s: u64 = xs.par_iter().map(|&x| x * x).sum();
        assert_eq!(s, 30);
        let doubled: Vec<u64> = xs.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let r: u64 = (0u64..5).into_par_iter().sum();
        assert_eq!(r, 10);
    }
}
