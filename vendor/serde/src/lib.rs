//! Offline stand-in for `serde 1` — just enough for this workspace.
//!
//! The sandbox this repo builds in has no crates.io access, so the external
//! facade crates it uses are vendored (see `vendor/README.md`). Real serde
//! is a zero-copy visitor framework; the workspace only ever derives
//! `Serialize`/`Deserialize` on owned config/report types and round-trips
//! them through `serde_json`, so this stub collapses the data model to one
//! owned [`Value`] tree:
//!
//! * [`Serialize`] renders a type into a [`Value`];
//! * [`Deserialize`] rebuilds a type from a [`Value`];
//! * the companion `serde_json` stub prints/parses `Value` as JSON text.
//!
//! The derive macros (`vendor/serde_derive`) target these traits with
//! serde's default externally-tagged representation, so JSON produced here
//! matches what real serde_json would emit for the same types.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// An owned JSON-shaped value — the entire (de)serialization data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (kept apart so `u64::MAX` survives).
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object, in insertion order (field order of the struct).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The entries of a map value, if this is one.
    #[must_use]
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The elements of an array value, if this is one.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Deserialization error: a human-readable reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// An error with the given message.
    #[must_use]
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types renderable into a [`Value`].
pub trait Serialize {
    /// Render `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Types rebuildable from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuild from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Look up a required struct field in a map value (derive-macro helper).
pub fn get_field<'v>(entries: &'v [(String, Value)], name: &str) -> Result<&'v Value, Error> {
    entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{name}`")))
}

// --- primitives ------------------------------------------------------------

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(i64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match *v {
                    Value::Int(n) => n,
                    Value::UInt(n) => i64::try_from(n)
                        .map_err(|_| Error::custom("integer out of range"))?,
                    _ => return Err(Error::custom(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match *v {
                    Value::UInt(n) => n,
                    Value::Int(n) => u64::try_from(n)
                        .map_err(|_| Error::custom("integer out of range"))?,
                    _ => return Err(Error::custom(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::UInt(*self as u64)
    }
}
impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let n = u64::from_value(v)?;
        usize::try_from(n).map_err(|_| Error::custom("integer out of range"))
    }
}

impl Serialize for isize {
    fn to_value(&self) -> Value {
        Value::Int(*self as i64)
    }
}
impl Deserialize for isize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let n = i64::from_value(v)?;
        isize::try_from(n).map_err(|_| Error::custom("integer out of range"))
    }
}

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(f64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match *v {
                    Value::Float(x) => Ok(x as $t),
                    Value::Int(n) => Ok(n as $t),
                    Value::UInt(n) => Ok(n as $t),
                    // serde_json prints non-finite floats as null.
                    Value::Null => Ok(<$t>::NAN),
                    _ => Err(Error::custom("expected number")),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Bool(b) => Ok(b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = String::from_value(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

// --- references & containers ----------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| Error::custom("expected array"))?;
                let expect = [$(stringify!($idx)),+].len();
                if items.len() != expect {
                    return Err(Error::custom(format!(
                        "expected array of {expect}, got {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Map keys must render to JSON object keys (strings).
pub trait MapKey: Sized {
    /// Render as an object key.
    fn to_key(&self) -> String;
    /// Parse back from an object key.
    fn from_key(key: &str) -> Result<Self, Error>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Result<Self, Error> {
        Ok(key.to_owned())
    }
}

macro_rules! impl_int_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(key: &str) -> Result<Self, Error> {
                key.parse().map_err(|_| Error::custom("bad integer map key"))
            }
        }
    )*};
}
impl_int_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}
impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_map()
            .ok_or_else(|| Error::custom("expected object"))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl<K: MapKey, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output (HashMap iteration order is not).
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}
impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: MapKey + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_map()
            .ok_or_else(|| Error::custom("expected object"))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        // Matches serde's encoding of Duration: { "secs": .., "nanos": .. }.
        Value::Map(vec![
            ("secs".to_owned(), Value::UInt(self.as_secs())),
            (
                "nanos".to_owned(),
                Value::UInt(u64::from(self.subsec_nanos())),
            ),
        ])
    }
}
impl Deserialize for std::time::Duration {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let entries = v
            .as_map()
            .ok_or_else(|| Error::custom("expected map for Duration"))?;
        let secs = u64::from_value(get_field(entries, "secs")?)?;
        let nanos = u32::from_value(get_field(entries, "nanos")?)?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn container_round_trips() {
        let v = vec![(1.5f64, 2u32), (3.0, 4)];
        let back = Vec::<(f64, u32)>::from_value(&v.to_value()).unwrap();
        assert_eq!(back, v);

        let mut m = BTreeMap::new();
        m.insert(200u16, 7u64);
        let back = BTreeMap::<u16, u64>::from_value(&m.to_value()).unwrap();
        assert_eq!(back, m);

        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u8>::from_value(&Value::UInt(3)).unwrap(), Some(3));
    }

    #[test]
    fn numeric_coercions() {
        assert_eq!(f64::from_value(&Value::Int(-2)).unwrap(), -2.0);
        assert_eq!(u64::from_value(&Value::Int(5)).unwrap(), 5);
        assert!(u8::from_value(&Value::Int(-1)).is_err());
        assert!(f64::from_value(&Value::Null).unwrap().is_nan());
    }
}
