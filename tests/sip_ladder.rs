//! Integration: the full Fig. 2 SIP ladder through the real stack —
//! generator, network, PBX, receiver — with wire-format round-trips.

use asterisk_capacity::prelude::*;
use capacity::experiment::MediaMode;
use loadgen::HoldingDist;
use sipcore::headers::HeaderName;
use sipcore::message::format_via;
use sipcore::{parse_message, Method, Request, SipMessage, SipUri, StatusCode};

/// One call, media off: exactly 13 SIP messages cross the wire
/// (9 to establish + 4 to tear down), as the paper counts.
#[test]
fn one_call_is_thirteen_messages() {
    let cfg = EmpiricalConfig {
        erlangs: 0.1, // essentially one call in the window
        servers: 1,
        holding: HoldingDist::Fixed(5.0),
        placement_window_s: 10.0,
        channels: 10,
        media: MediaMode::Off,
        pickup_delay: des::SimDuration::ZERO,
        link_loss_probability: 0.0,
        silence_suppression: false,
        capture_traffic: false,
        user_pool: 4,
        max_calls_per_user: None,
        faults: faults::FaultSchedule::new(),
        overload: None,
        overload_law: None,
        retry: None,
        threads: None,
        population: None,
        seed: 11,
    };
    // Try seeds until a window contains exactly one call (Poisson luck).
    let mut chosen = None;
    for seed in 0..40u64 {
        let r = EmpiricalRunner::run(EmpiricalConfig {
            seed,
            ..cfg.clone()
        });
        if r.attempted == 1 && r.completed == 1 {
            chosen = Some(r);
            break;
        }
    }
    let r = chosen.expect("some seed yields exactly one completed call");
    let reg_msgs = 2 * 2 * 4; // REGISTER + 200 for each of 2×4 users
    assert_eq!(r.monitor.sip_total - reg_msgs, 13, "the Fig. 2 ladder");
    assert_eq!(
        r.monitor.sip_request_count("INVITE"),
        2,
        "caller->PBX, PBX->callee"
    );
    assert_eq!(r.monitor.sip_response_count(100), 1);
    assert_eq!(r.monitor.sip_response_count(180), 2);
    // 200s: INVITE (2 legs) + BYE (2 legs) + registrations.
    assert_eq!(r.monitor.sip_response_count(200) - reg_msgs / 2, 4);
    assert_eq!(r.monitor.sip_request_count("ACK"), 2);
    assert_eq!(r.monitor.sip_request_count("BYE"), 2);
    assert_eq!(r.monitor.sip_error_count(), 0);
}

/// Every message the components emit survives a wire round-trip intact —
/// the parser and serializer agree end to end.
#[test]
fn emitted_messages_round_trip_the_wire_format() {
    let sdp = sipcore::sdp::SessionDescription::new(
        "1001",
        "10.0.0.2",
        6000,
        sipcore::sdp::SdpCodec::Pcmu,
    );
    let invite = Request::new(Method::Invite, SipUri::new("1002", "pbx.unb.br"))
        .header(HeaderName::Via, format_via("10.0.0.2", 5060, "z9hG4bKit"))
        .header(HeaderName::From, "<sip:1001@pbx.unb.br>;tag=f1")
        .header(HeaderName::To, "<sip:1002@pbx.unb.br>")
        .header(HeaderName::CallId, "it-call-1")
        .header(HeaderName::CSeq, "1 INVITE")
        .with_body("application/sdp", sdp.to_body());
    let wire = invite.to_wire();
    let parsed = parse_message(&wire).expect("valid SIP");
    assert_eq!(parsed.as_request().unwrap(), &invite);
    assert_eq!(parsed.to_wire(), wire, "byte-stable");

    let ok = invite.make_response(StatusCode::OK);
    let wire = ok.to_wire();
    let parsed = parse_message(&wire).expect("valid SIP");
    assert_eq!(parsed.as_response().unwrap(), &ok);

    // And the SDP body is recoverable from the parsed message.
    let body = &parsed_body(&SipMessage::Request(invite.clone()));
    let sdp_back = sipcore::sdp::SessionDescription::parse(body).expect("SDP");
    assert_eq!(sdp_back.audio_port, 6000);
}

fn parsed_body(msg: &SipMessage) -> Vec<u8> {
    match msg {
        SipMessage::Request(r) => r.body.to_vec(),
        SipMessage::Response(r) => r.body.to_vec(),
    }
}

/// Call-ID correlation: the PBX's two legs carry different Call-IDs (it is
/// a B2BUA, not a proxy), and the CDR joins them.
#[test]
fn b2bua_uses_distinct_call_ids_per_leg() {
    use netsim::NodeId;
    use pbx_sim::{Directory, Pbx, PbxAction, PbxConfig};

    let mut pbx = Pbx::new(
        PbxConfig::evaluation_default(NodeId(3)),
        Directory::with_subscribers(1000, 10),
    );
    // Register the callee directly through a REGISTER message.
    let reg = Request::new(Method::Register, SipUri::server("pbx.unb.br"))
        .header(HeaderName::From, "<sip:1002@pbx.unb.br>;tag=r")
        .header(HeaderName::To, "<sip:1002@pbx.unb.br>")
        .header(HeaderName::CallId, "reg-1002")
        .header(HeaderName::CSeq, "1 REGISTER")
        .header(HeaderName::Authorization, "Simple 1002 pw-1002");
    pbx.handle_sip(des::SimTime::ZERO, NodeId(2), reg.into());

    let sdp =
        sipcore::sdp::SessionDescription::new("1001", "c", 6000, sipcore::sdp::SdpCodec::Pcmu);
    let invite = Request::new(Method::Invite, SipUri::new("1002", "pbx.unb.br"))
        .header(HeaderName::Via, format_via("c", 5060, "z9hG4bKleg"))
        .header(HeaderName::From, "<sip:1001@pbx.unb.br>;tag=x")
        .header(HeaderName::To, "<sip:1002@pbx.unb.br>")
        .header(HeaderName::CallId, "caller-leg-id")
        .header(HeaderName::CSeq, "1 INVITE")
        .with_body("application/sdp", sdp.to_body());
    let actions = pbx.handle_sip(des::SimTime::from_secs(1), NodeId(1), invite.into());
    let forwarded = actions
        .iter()
        .find_map(|a| match a {
            PbxAction::SendSip {
                msg: SipMessage::Request(r),
                ..
            } if r.method == Method::Invite => Some(r.clone()),
            _ => None,
        })
        .expect("INVITE forwarded");
    let callee_leg_id = forwarded.call_id().unwrap().to_owned();
    assert_ne!(callee_leg_id, "caller-leg-id");
    assert_eq!(pbx.peer_call_id(&callee_leg_id), Some("caller-leg-id"));
}
