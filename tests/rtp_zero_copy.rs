//! Integration: allocation regression for the RTP media path.
//!
//! The zero-copy design moves G.711 payloads as `Arc<[u8]>` — the bytes
//! are companded once per `encode_every` frames and every subsequent
//! packetization, network hop and PBX relay is a refcount bump. A counting
//! global allocator makes that claim falsifiable: during steady-state
//! media, no payload-sized buffer may be allocated, and total allocation
//! traffic must be bounded by re-encodes, not by relayed packets.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};

use asterisk_capacity::prelude::*;
use capacity::experiment::MediaMode;
use capacity::world::World;
use des::{Scheduler, SchedulerKind, SimTime, Simulation};
use loadgen::HoldingDist;
use rtpcore::packetizer::Law;
use rtpcore::Packetizer;

/// A G.711 frame payload is 160 B and a serialized RTP packet is 172 B.
/// An allocation of either size during steady-state media is a smoking
/// gun for a payload copy (the seed code path made three per hop).
const PAYLOAD_SIZES: [usize; 2] = [160, 172];

static ENABLED: AtomicBool = AtomicBool::new(false);
static TOTAL: AtomicU64 = AtomicU64::new(0);
static PAYLOAD_SIZED: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: delegates verbatim to `System`; the counters are lock-free
// atomics, so no allocation or reentrancy happens on the counting path.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ENABLED.load(Relaxed) {
            TOTAL.fetch_add(1, Relaxed);
            if PAYLOAD_SIZES.contains(&layout.size()) {
                PAYLOAD_SIZED.fetch_add(1, Relaxed);
            }
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn start_counting() {
    TOTAL.store(0, Relaxed);
    PAYLOAD_SIZED.store(0, Relaxed);
    ENABLED.store(true, Relaxed);
}

fn stop_counting() -> (u64, u64) {
    ENABLED.store(false, Relaxed);
    (TOTAL.load(Relaxed), PAYLOAD_SIZED.load(Relaxed))
}

/// Both checks live in one test function: the counters are process-global
/// and must not see a concurrent sibling test.
#[test]
fn relay_path_performs_zero_payload_copies() {
    // --- Part 1: the packetizer fast path allocates nothing at all. ---
    let mut p = Packetizer::new(7, Law::Mu, 0, 0);
    let samples = vec![0i16; rtpcore::SAMPLES_PER_FRAME];
    let cached = p.encode_shared(&samples);
    let warmup = p.packetize_shared(cached.clone());
    drop(warmup);

    start_counting();
    for _ in 0..1000 {
        let datagram = p.packetize_shared(cached.clone());
        std::hint::black_box(&datagram);
    }
    let (total, _) = stop_counting();
    assert_eq!(
        total, 0,
        "steady-state packetization must be a pure refcount bump"
    );

    // --- Part 2: a full simulation window of pure media + relay. ---
    // Calls are placed in [1 s, 6 s] and hold for a fixed 30 s, so the
    // window [10 s, 25 s] contains nothing but media emission, network
    // hops, PBX relays and monitor taps — the steady-state fast path.
    let cfg = EmpiricalConfig {
        erlangs: 30.0,
        servers: 1,
        holding: HoldingDist::Fixed(30.0),
        placement_window_s: 5.0,
        channels: 20,
        media: MediaMode::PerPacket { encode_every: 50 },
        pickup_delay: des::SimDuration::from_millis(500),
        link_loss_probability: 0.0,
        silence_suppression: false,
        capture_traffic: false,
        user_pool: 50,
        max_calls_per_user: None,
        faults: faults::FaultSchedule::new(),
        overload: None,
        overload_law: None,
        retry: None,
        threads: None,
        population: None,
        seed: 7,
    };
    let sched =
        Scheduler::with_kind_and_capacity(SchedulerKind::Wheel, cfg.expected_pending_events());
    let world = World::with_media_path(cfg, MediaPath::Coalesced);
    let mut sim = Simulation::with_scheduler(world, sched);
    sim.world.prime(&mut sim.sched);
    sim.run_until(SimTime::from_secs(10));
    let relayed_before: u64 = sim.world.pbxes.iter().map(|p| p.stats().rtp_relayed).sum();

    start_counting();
    sim.run_until(SimTime::from_secs(25));
    let (total, payload_sized) = stop_counting();

    let relayed: u64 = sim
        .world
        .pbxes
        .iter()
        .map(|p| p.stats().rtp_relayed)
        .sum::<u64>()
        - relayed_before;
    assert!(
        relayed > 1000,
        "window must exercise the relay path, got {relayed} packets"
    );
    assert_eq!(
        payload_sized, 0,
        "payload-sized buffers were allocated during steady-state media \
         ({payload_sized} of {total} allocations) — a copy crept back in"
    );
    // Allocation traffic is bounded by periodic re-encodes (one shared
    // buffer per `encode_every` frames per stream), not by packets.
    assert!(
        total < relayed / 5,
        "{total} allocations for {relayed} relayed packets — the media \
         path is allocating per packet"
    );
}
