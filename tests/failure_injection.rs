//! Integration: failure paths — exhausted pools, unknown users, bad
//! credentials, lossy wires — degrade gracefully and visibly.

use asterisk_capacity::prelude::*;
use capacity::experiment::MediaMode;
use des::{SimDuration, SimTime};
use loadgen::HoldingDist;
use netsim::NodeId;
use pbx_sim::{Directory, Pbx, PbxAction, PbxConfig};
use sipcore::headers::HeaderName;
use sipcore::message::format_via;
use sipcore::{Method, Request, SipMessage, SipUri, StatusCode};

fn sip_of(a: &PbxAction) -> &SipMessage {
    match a {
        PbxAction::SendSip { msg, .. } => msg,
        other => panic!("expected SIP action, got {other:?}"),
    }
}

#[test]
fn zero_channel_pbx_blocks_every_call() {
    let cfg = EmpiricalConfig {
        erlangs: 2.0,
        servers: 1,
        holding: HoldingDist::Fixed(10.0),
        placement_window_s: 60.0,
        channels: 0,
        media: MediaMode::Off,
        pickup_delay: SimDuration::ZERO,
        link_loss_probability: 0.0,
        silence_suppression: false,
        capture_traffic: false,
        user_pool: 10,
        max_calls_per_user: None,
        faults: faults::FaultSchedule::new(),
        overload: None,
        overload_law: None,
        retry: None,
        threads: None,
        population: None,
        seed: 5,
    };
    let r = EmpiricalRunner::run(cfg);
    assert!(r.attempted > 0);
    assert_eq!(r.blocked, r.attempted, "every call refused");
    assert_eq!(r.observed_pb, 1.0);
    assert_eq!(r.completed, 0);
    assert_eq!(r.monitor.rtp_packets, 0);
    assert!(r.monitor.sip_error_count() >= r.attempted);
}

#[test]
fn heavy_wire_loss_degrades_mos_but_not_blocking() {
    let base = EmpiricalConfig {
        erlangs: 3.0,
        servers: 1,
        holding: HoldingDist::Fixed(15.0),
        placement_window_s: 40.0,
        channels: 20,
        media: MediaMode::PerPacket { encode_every: 50 },
        pickup_delay: SimDuration::ZERO,
        link_loss_probability: 0.0,
        silence_suppression: false,
        capture_traffic: false,
        user_pool: 10,
        max_calls_per_user: None,
        faults: faults::FaultSchedule::new(),
        overload: None,
        overload_law: None,
        retry: None,
        threads: None,
        population: None,
        seed: 21,
    };
    let clean = EmpiricalRunner::run(base.clone());
    let lossy = EmpiricalRunner::run(EmpiricalConfig {
        link_loss_probability: 0.02, // 2% per hop, two hops per direction
        ..base
    });
    assert!(
        clean.monitor.mos_mean > 4.3,
        "clean MOS {}",
        clean.monitor.mos_mean
    );
    assert!(
        lossy.monitor.mos_mean < clean.monitor.mos_mean - 0.2,
        "lossy {} vs clean {}",
        lossy.monitor.mos_mean,
        clean.monitor.mos_mean
    );
    assert!(
        lossy.monitor.mean_loss > 0.02,
        "loss visible: {}",
        lossy.monitor.mean_loss
    );
    // Admission control is a signalling property; a lossy media plane
    // doesn't inflate blocking (some SIP may be lost, producing abandoned
    // attempts rather than blocks).
    assert_eq!(lossy.blocked, 0);
}

#[test]
fn unregistered_callee_fails_cleanly() {
    let mut pbx = Pbx::new(
        PbxConfig::evaluation_default(NodeId(3)),
        Directory::with_subscribers(1000, 10),
    );
    let invite = Request::new(Method::Invite, SipUri::new("1005", "pbx.unb.br"))
        .header(HeaderName::Via, format_via("c", 5060, "z9hG4bKf1"))
        .header(HeaderName::From, "<sip:1001@pbx.unb.br>;tag=t")
        .header(HeaderName::To, "<sip:1005@pbx.unb.br>")
        .header(HeaderName::CallId, "fail-1")
        .header(HeaderName::CSeq, "1 INVITE");
    let acts = pbx.handle_sip(SimTime::ZERO, NodeId(1), invite.into());
    assert_eq!(acts.len(), 1);
    assert_eq!(
        sip_of(&acts[0]).as_response().unwrap().status,
        StatusCode::NOT_FOUND
    );
    assert_eq!(pbx.pool.in_use(), 0, "no channel leaked on failure");
    assert_eq!(pbx.cdr.count(pbx_sim::Disposition::Failed), 1);
}

#[test]
fn bad_credentials_never_register() {
    let mut pbx = Pbx::new(
        PbxConfig::evaluation_default(NodeId(3)),
        Directory::with_subscribers(1000, 10),
    );
    for (uid, pw, want) in [
        ("1001", "pw-1001", StatusCode::OK),
        ("1001", "stolen", StatusCode::FORBIDDEN),
        ("9999", "pw-9999", StatusCode::FORBIDDEN),
    ] {
        let reg = Request::new(Method::Register, SipUri::server("pbx.unb.br"))
            .header(HeaderName::From, format!("<sip:{uid}@pbx.unb.br>;tag=r"))
            .header(HeaderName::To, format!("<sip:{uid}@pbx.unb.br>"))
            .header(HeaderName::CallId, format!("reg-{uid}-{pw}"))
            .header(HeaderName::CSeq, "1 REGISTER")
            .header(HeaderName::Authorization, format!("Simple {uid} {pw}"));
        let acts = pbx.handle_sip(SimTime::ZERO, NodeId(1), reg.into());
        assert_eq!(
            sip_of(&acts[0]).as_response().unwrap().status,
            want,
            "{uid}/{pw}"
        );
    }
    let (ok, failed) = pbx.registrar.stats();
    assert_eq!((ok, failed), (1, 2));
}

#[test]
fn malformed_sip_is_rejected_not_crashed() {
    // The parser refuses garbage without panicking; the stack never sees it.
    for garbage in [
        &b"\x00\x01\x02\x03"[..],
        b"INVITE",
        b"INVITE sip:x@h SIP/3.0\r\n\r\n",
        b"SIP/2.0 whatever\r\n\r\n",
    ] {
        assert!(sipcore::parse_message(garbage).is_err());
    }
}

#[test]
fn pool_saturation_recovers_after_load_drops() {
    // Burst overload then quiet: the pool drains and later calls succeed.
    let mut pool = pbx_sim::ChannelPool::new(3);
    let t0 = SimTime::ZERO;
    let ids: Vec<_> = (0..3).map(|_| pool.allocate(t0).unwrap()).collect();
    assert!(pool.allocate(t0).is_none());
    for (k, id) in ids.into_iter().enumerate() {
        pool.release(SimTime::from_secs(k as u64 + 1), id);
    }
    assert_eq!(pool.in_use(), 0);
    assert!(pool.allocate(SimTime::from_secs(10)).is_some());
    assert_eq!(pool.refused_total(), 1);
}
