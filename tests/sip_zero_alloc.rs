//! Integration: allocation regression for the interned signalling path.
//!
//! The zero-allocation signalling design makes four claims about what an
//! established call's steady-state hop costs on the interned path: wire
//! bytes travel as `Arc<[u8]>` (refcount bump per hop), routing fields
//! are read through a borrowed [`sipcore::WireMessage`] view (no decode,
//! no `String`), keys resolve through a warm [`sipcore::AtomTable`]
//! (hash lookup, no intern), and serialization writes into pooled or
//! reused buffers (no fresh `Vec`/`String`). A counting global allocator
//! makes the combined claim falsifiable: one simulated hop of all four
//! stages, repeated a thousand times after warmup, must perform zero
//! heap allocations.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

use sipcore::message::{format_via, write_via_args};
use sipcore::sdp::SdpCodec;
use sipcore::{
    AtomTable, Body, BufferPool, HeaderName, Method, Request, SdpBody, SdpSummary, SdpView,
    SipMessage, SipUri, WireMessage,
};

static TOTAL: AtomicU64 = AtomicU64::new(0);

thread_local! {
    // Counting is scoped to the thread running the test: libtest's main
    // thread wakes periodically while waiting and allocates a handful of
    // bookkeeping objects, which must not pollute the hop count. Const
    // initialization keeps the TLS access in the allocator reentrancy-free.
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

struct CountingAlloc;

// SAFETY: delegates verbatim to `System`; the counter is a lock-free
// atomic, so no allocation or reentrancy happens on the counting path.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.with(Cell::get) {
            TOTAL.fetch_add(1, Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn start_counting() {
    TOTAL.store(0, Relaxed);
    COUNTING.with(|c| c.set(true));
}

fn stop_counting() -> u64 {
    COUNTING.with(|c| c.set(false));
    TOTAL.load(Relaxed)
}

/// An in-dialog BYE — the message an established call's teardown hop
/// carries; mid-call signalling is shaped identically (re-INVITE, ACK).
fn bye() -> SipMessage {
    Request::new(
        Method::Bye,
        SipUri::parse("sip:1501@pbx.example:5060").unwrap(),
    )
    .header(HeaderName::Via, format_via("10.0.0.2", 5060, "z9hG4bKhop7"))
    .header(HeaderName::From, "<sip:1001@pbx.example>;tag=ta")
    .header(HeaderName::To, "<sip:1501@pbx.example>;tag=tb")
    .header(HeaderName::CallId, "call-7@10.0.0.2")
    .header(HeaderName::CSeq, "2 BYE")
    .into()
}

/// All checks live in one test function: the counter is process-global
/// and must not see a concurrent sibling test.
#[test]
fn established_call_signalling_hop_allocates_nothing() {
    let msg = bye();
    let wire: Arc<[u8]> = msg.to_wire().into();

    // Warm state a running stack holds: the interner has seen this
    // call's keys, the pool has a released buffer of the right capacity,
    // and the Via scratch String has grown to its working size.
    let mut atoms = AtomTable::new();
    let call_atom = atoms.intern("call-7@10.0.0.2");
    let branch_atom = atoms.intern("z9hG4bKhop7");
    let mut pool = BufferPool::default();
    let warm = pool.wire_of(&msg);
    pool.release(warm);
    let mut via_scratch = String::with_capacity(64);

    // One warmup hop so lazily grown capacity (if any) exists before
    // counting starts.
    for _ in 0..3 {
        let bytes = wire.clone();
        let view = WireMessage::parse(&bytes).expect("valid wire");
        assert_eq!(atoms.lookup(view.call_id().unwrap()), Some(call_atom));
        let buf = pool.wire_of(&msg);
        pool.release(buf);
        via_scratch.clear();
        write_via_args(
            &mut via_scratch,
            "pbx.example",
            5060,
            format_args!("z9hG4bKpbx{}", 41),
        );
    }

    start_counting();
    for i in 0..1000u32 {
        // Hop stage 1: the frame arrives — shared bytes, refcount bump.
        let bytes = wire.clone();

        // Hop stage 2: route on the borrowed wire view — no decode.
        let view = WireMessage::parse(&bytes).expect("valid wire");
        assert!(view.is_request());
        assert_eq!(view.method_token(), Some("BYE"));
        assert_eq!(view.cseq(), Some((2, "BYE")));

        // Hop stage 3: resolve keys through the warm interner.
        assert_eq!(atoms.lookup(view.call_id().unwrap()), Some(call_atom));
        assert_eq!(
            atoms.lookup(view.top_via_branch().unwrap()),
            Some(branch_atom)
        );

        // Hop stage 4a: rebuild the forwarded Via in the reused scratch.
        via_scratch.clear();
        write_via_args(
            &mut via_scratch,
            "pbx.example",
            5060,
            format_args!("z9hG4bKpbx{}", i % 10),
        );
        std::hint::black_box(&via_scratch);

        // Hop stage 4b: serialize the outgoing message into the pooled
        // buffer and return it once the bytes are "on the wire".
        let buf = pool.wire_of(&msg);
        std::hint::black_box(&buf);
        pool.release(buf);
    }
    let total = stop_counting();

    assert_eq!(
        total, 0,
        "steady-state interned signalling hop allocated {total} times \
         in 1000 hops — an allocation crept back into the hot path"
    );

    // The pool really served every hop from its free list (1 cold + 3
    // warmup + 1000 counted acquires, all but the first reused).
    let (acquired, reused) = pool.stats();
    assert_eq!(acquired, 1004);
    assert_eq!(reused, 1003);

    // The reference behaviour the hop above replaces: an eager parse
    // plus per-message buffers allocates every time. Counted here so the
    // zero above stays meaningful — the harness demonstrably counts this
    // exact kind of work.
    start_counting();
    let parsed = sipcore::parse_message(&wire).expect("round-trip");
    let mut via = String::new();
    let _ = write!(via, "SIP/2.0/UDP pbx.example:5060;branch=z9hG4bKx");
    let rewire = parsed.to_wire();
    let eager_total = stop_counting();
    std::hint::black_box((parsed, via, rewire));
    assert!(
        eager_total > 0,
        "the counting harness failed to observe eager-path allocations"
    );

    // ---- SDP-bearing call setup (INVITE / 200 / ACK) -------------------
    // The same zero claim for the media-negotiation hops: offers are
    // structured bodies over shared endpoint strings (refcount bumps),
    // answers are read through a borrowed `SdpView` over wire bytes,
    // dialog state is a four-word `SdpSummary` through a warm interner,
    // and caller-facing bodies serialize into pooled buffers. Fresh pool
    // and interner: the pool-stats assertions above must stay untouched.
    let origin: Arc<str> = Arc::from("1001");
    let host: Arc<str> = Arc::from("10.0.0.1");
    let mut sdp_atoms = AtomTable::new();
    let mut sdp_pool = BufferPool::default();
    // The 200's answer body as the wire delivers it on the interned path
    // after a reference-form hop: raw bytes.
    let answer_bytes = Body::Bytes(
        SdpBody::new("1501", "10.0.0.2", 30_000, SdpCodec::Pcmu)
            .to_session()
            .to_body(),
    );
    for _ in 0..3 {
        let offer = SdpBody::new(Arc::clone(&origin), Arc::clone(&host), 6000, SdpCodec::Pcmu);
        std::hint::black_box(offer.len());
        let s = SdpSummary::of_body(&answer_bytes, &mut sdp_atoms).expect("valid answer");
        let buf = s.to_body_into(&sdp_atoms, &mut sdp_pool);
        sdp_pool.release(buf);
    }

    start_counting();
    for _ in 0..1000u32 {
        // INVITE leg: build the offer — structured body, shared strings.
        let offer = SdpBody::new(Arc::clone(&origin), Arc::clone(&host), 6000, SdpCodec::Pcmu);
        std::hint::black_box(offer.len());

        // 200 leg: read the answer through the borrowed view — no decode.
        let view = SdpView::parse(answer_bytes.as_bytes().unwrap()).expect("non-empty");
        assert_eq!(view.audio_port(), Some(30_000));
        assert_eq!(view.codec(), Some(SdpCodec::Pcmu));

        // Dialog bookkeeping: summarize through the warm interner.
        let s = SdpSummary::of_body(&answer_bytes, &mut sdp_atoms).expect("valid answer");
        assert_eq!(s.audio_port, 30_000);

        // Relayed answer: serialize into the pooled buffer and release
        // once the bytes are "on the wire".
        let buf = s.to_body_into(&sdp_atoms, &mut sdp_pool);
        std::hint::black_box(&buf);
        sdp_pool.release(buf);
    }
    let sdp_total = stop_counting();
    assert_eq!(
        sdp_total, 0,
        "steady-state SDP negotiation hop allocated {sdp_total} times \
         in 1000 hops — an allocation crept into the SDP fast path"
    );
}
