//! Integration: the RFC 2617 digest registration handshake —
//! REGISTER → 401 challenge → authenticated REGISTER → 200 — between the
//! UAC and the PBX registrar, exactly as the LDAP-backed UnB deployment
//! authenticates its users.

use des::SimTime;
use loadgen::{Uac, UacEvent};
use netsim::NodeId;
use pbx_sim::{Directory, Pbx, PbxAction, PbxConfig};
use sipcore::headers::HeaderName;
use sipcore::{SipMessage, StatusCode};

const CLIENT: NodeId = NodeId(1);
const PBX_NODE: NodeId = NodeId(3);

fn digest_pbx() -> Pbx {
    let mut cfg = PbxConfig::evaluation_default(PBX_NODE);
    cfg.require_digest = true;
    Pbx::new(cfg, Directory::with_subscribers(1000, 10))
}

/// Pump messages between the UAC and PBX until quiescent; returns the
/// sequence of (direction, status/method) for inspection.
fn pump(uac: &mut Uac, pbx: &mut Pbx, initial: Vec<UacEvent>) -> Vec<String> {
    let now = SimTime::ZERO;
    let mut trace = Vec::new();
    let mut to_pbx: Vec<SipMessage> = initial
        .into_iter()
        .filter_map(|e| match e {
            UacEvent::SendSip { msg, .. } => Some(msg),
            _ => None,
        })
        .collect();
    let mut guard = 0;
    while !to_pbx.is_empty() && guard < 10 {
        guard += 1;
        let mut to_uac = Vec::new();
        for msg in to_pbx.drain(..) {
            trace.push(format!("->pbx {}", describe(&msg)));
            for act in pbx.handle_sip(now, CLIENT, msg) {
                if let PbxAction::SendSip { msg, .. } = act {
                    trace.push(format!("->uac {}", describe(&msg)));
                    to_uac.push(msg);
                }
            }
        }
        for msg in to_uac {
            for ev in uac.on_sip(now, msg) {
                if let UacEvent::SendSip { msg, .. } = ev {
                    to_pbx.push(msg);
                }
            }
        }
    }
    trace
}

fn describe(msg: &SipMessage) -> String {
    match msg {
        SipMessage::Request(r) => r.method.to_string(),
        SipMessage::Response(r) => r.status.0.to_string(),
    }
}

#[test]
fn digest_handshake_registers_the_user() {
    let mut pbx = digest_pbx();
    let mut uac = Uac::new(CLIENT, PBX_NODE, "pbx.unb.br");
    let initial = uac.register_digest("1004");
    let trace = pump(&mut uac, &mut pbx, initial);
    assert_eq!(
        trace,
        vec!["->pbx REGISTER", "->uac 401", "->pbx REGISTER", "->uac 200"],
        "the canonical challenge round-trip"
    );
    assert_eq!(uac.registrations_confirmed, 1);
    let binding = pbx.registrar.lookup(SimTime::from_secs(1), "1004");
    assert!(binding.is_some(), "binding stored");
    assert_eq!(binding.unwrap().node, CLIENT);
}

#[test]
fn simple_scheme_is_refused_when_digest_required() {
    let mut pbx = digest_pbx();
    let mut uac = Uac::new(CLIENT, PBX_NODE, "pbx.unb.br");
    // The legacy Simple registration carries credentials the digest-only
    // registrar will not accept — it answers with a challenge instead.
    let initial = uac.register("1004");
    let trace = pump(&mut uac, &mut pbx, initial);
    assert_eq!(trace[0], "->pbx REGISTER");
    assert_eq!(trace[1], "->uac 401", "challenged, not accepted");
    assert!(pbx.registrar.is_empty());
}

#[test]
fn wrong_password_fails_digest() {
    let mut pbx = digest_pbx();
    // Hand-craft the flow with a bad password: challenge, then a bogus
    // answer.
    let reg = sipcore::Request::new(
        sipcore::Method::Register,
        sipcore::SipUri::server("pbx.unb.br"),
    )
    .header(HeaderName::From, "<sip:1004@pbx.unb.br>;tag=r")
    .header(HeaderName::To, "<sip:1004@pbx.unb.br>")
    .header(HeaderName::CallId, "bad-digest")
    .header(HeaderName::CSeq, "1 REGISTER");
    let acts = pbx.handle_sip(SimTime::ZERO, CLIENT, reg.clone().into());
    let challenge_resp = match &acts[0] {
        PbxAction::SendSip {
            msg: SipMessage::Response(r),
            ..
        } => r.clone(),
        other => panic!("{other:?}"),
    };
    assert_eq!(challenge_resp.status, StatusCode::UNAUTHORIZED);
    let www = challenge_resp
        .headers
        .get(&HeaderName::WwwAuthenticate)
        .expect("challenge present");
    let challenge = sipcore::auth::DigestChallenge::parse(www).unwrap();
    let creds = sipcore::auth::DigestCredentials::answer(
        &challenge,
        "1004",
        "WRONG-password",
        "REGISTER",
        "sip:pbx.unb.br",
    );
    let retry = reg
        .clone()
        .header(HeaderName::Authorization, creds.to_header_value());
    let acts = pbx.handle_sip(SimTime::ZERO, CLIENT, retry.into());
    match &acts[0] {
        PbxAction::SendSip {
            msg: SipMessage::Response(r),
            ..
        } => {
            assert_eq!(r.status, StatusCode::FORBIDDEN);
        }
        other => panic!("{other:?}"),
    }
    assert!(pbx.registrar.is_empty());
}

#[test]
fn digest_replay_against_other_realm_fails() {
    // Credentials computed for one realm must not authenticate against a
    // PBX with a different hostname/realm (nonce and realm both differ).
    let mut cfg = PbxConfig::evaluation_default(PBX_NODE);
    cfg.require_digest = true;
    cfg.hostname = "other.example.org".to_owned();
    let mut other_pbx = Pbx::new(cfg, Directory::with_subscribers(1000, 10));

    let challenge = sipcore::auth::DigestChallenge {
        realm: "pbx.unb.br".to_owned(),
        nonce: "stolen-nonce".to_owned(),
    };
    let creds = sipcore::auth::DigestCredentials::answer(
        &challenge,
        "1004",
        "pw-1004",
        "REGISTER",
        "sip:pbx.unb.br",
    );
    let reg = sipcore::Request::new(
        sipcore::Method::Register,
        sipcore::SipUri::server("other.example.org"),
    )
    .header(HeaderName::From, "<sip:1004@other>;tag=r")
    .header(HeaderName::To, "<sip:1004@other>")
    .header(HeaderName::CallId, "replay")
    .header(HeaderName::CSeq, "1 REGISTER")
    .header(HeaderName::Authorization, creds.to_header_value());
    let acts = other_pbx.handle_sip(SimTime::ZERO, CLIENT, reg.into());
    match &acts[0] {
        PbxAction::SendSip {
            msg: SipMessage::Response(r),
            ..
        } => {
            assert_eq!(r.status, StatusCode::FORBIDDEN);
        }
        other => panic!("{other:?}"),
    }
}
