//! Integration: the paper's central claim — Erlang-B characterises the
//! PBX's empirical blocking behaviour.

use asterisk_capacity::prelude::*;
use capacity::experiment::MediaMode;
use loadgen::HoldingDist;
use teletraffic::blocking_probability;

fn sweep_config(erlangs: f64, holding: HoldingDist, channels: u32, seed: u64) -> EmpiricalConfig {
    EmpiricalConfig {
        erlangs,
        servers: 1,
        holding,
        placement_window_s: 600.0,
        channels,
        media: MediaMode::Off,
        pickup_delay: des::SimDuration::ZERO,
        link_loss_probability: 0.0,
        silence_suppression: false,
        capture_traffic: false,
        user_pool: 50,
        max_calls_per_user: None,
        faults: faults::FaultSchedule::new(),
        overload: None,
        overload_law: None,
        retry: None,
        threads: None,
        population: None,
        seed,
    }
}

/// Pooled over a few replications, the observed blocking matches Erlang-B
/// within a few percentage points across light, critical and overloaded
/// regimes (a down-scaled Fig. 6).
#[test]
fn observed_blocking_matches_erlang_b() {
    // Small system (N=20) so debug-mode runtimes stay low while sample
    // counts stay high.
    for (a, tol_pp) in [(10.0, 2.0), (20.0, 4.0), (30.0, 4.0)] {
        let mut blocked = 0u64;
        let mut attempted = 0u64;
        for seed in 0..4u64 {
            let r = EmpiricalRunner::run(sweep_config(
                a,
                HoldingDist::Exponential(30.0),
                20,
                seed * 131 + 7,
            ));
            blocked += r.blocked;
            attempted += r.attempted;
        }
        let observed = blocked as f64 / attempted as f64 * 100.0;
        let analytic = blocking_probability(Erlangs(a), 20) * 100.0;
        assert!(
            (observed - analytic).abs() < tol_pp,
            "A={a}: observed {observed:.2}% vs Erlang-B {analytic:.2}% over {attempted} calls"
        );
    }
}

/// Erlang-B insensitivity: fixed and exponential holding times with the
/// same mean produce statistically indistinguishable blocking — which is
/// why the paper's fixed 120 s calls are a legitimate realisation of the
/// model.
#[test]
fn holding_time_insensitivity() {
    let a = 24.0;
    let channels = 24;
    let run_with = |holding: HoldingDist| -> f64 {
        let mut blocked = 0u64;
        let mut attempted = 0u64;
        for seed in 0..4u64 {
            let r = EmpiricalRunner::run(sweep_config(a, holding, channels, 1000 + seed));
            blocked += r.blocked;
            attempted += r.attempted;
        }
        blocked as f64 / attempted as f64
    };
    let fixed = run_with(HoldingDist::Fixed(30.0));
    let expo = run_with(HoldingDist::Exponential(30.0));
    let lognormal = run_with(HoldingDist::Lognormal {
        mean: 30.0,
        sd: 20.0,
    });
    let analytic = blocking_probability(Erlangs(a), channels);
    for (name, pb) in [
        ("fixed", fixed),
        ("exponential", expo),
        ("lognormal", lognormal),
    ] {
        assert!(
            (pb - analytic).abs() < 0.05,
            "{name}: {pb:.4} vs analytic {analytic:.4}"
        );
    }
    assert!(
        (fixed - expo).abs() < 0.05,
        "fixed {fixed:.4} vs expo {expo:.4}"
    );
}

/// Carried traffic ≈ offered × (1 − Pb), and channel occupancy never
/// exceeds the pool.
#[test]
fn carried_traffic_consistency() {
    let r = EmpiricalRunner::run(sweep_config(25.0, HoldingDist::Exponential(30.0), 20, 5));
    assert!(r.peak_channels <= 20);
    let expected_carried = r.erlangs * (1.0 - r.observed_pb);
    assert!(
        (r.carried_erlangs - expected_carried).abs() < 3.5,
        "carried {:.1} vs A(1-Pb) {:.1}",
        r.carried_erlangs,
        expected_carried
    );
}

/// The channels_for inverse solver agrees with what the empirical system
/// needs: provisioning by the solver produces at-most-target blocking.
#[test]
fn dimensioning_by_solver_meets_target() {
    let a = 15.0;
    let target = 0.05;
    let n = teletraffic::channels_for(Erlangs(a), target).unwrap();
    let mut blocked = 0u64;
    let mut attempted = 0u64;
    for seed in 0..4u64 {
        let r = EmpiricalRunner::run(sweep_config(
            a,
            HoldingDist::Exponential(30.0),
            n,
            40 + seed,
        ));
        blocked += r.blocked;
        attempted += r.attempted;
    }
    let observed = blocked as f64 / attempted as f64;
    assert!(
        observed <= target + 0.03,
        "provisioned {n} channels, observed {observed:.3} for target {target}"
    );
}
