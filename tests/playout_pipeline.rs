//! Integration: the full receiver pipeline — RTP packets through the
//! adaptive playout buffer, loss concealment for missed slots, G.711
//! decode — reconstructing audible speech from an imperfect network.

use des::rng::Distributions;
use des::StreamRng;
use rtpcore::g711::ulaw_decode;
use rtpcore::packet::RtpPacket;
use rtpcore::packetizer::{Law, Packetizer, VoiceSource, SAMPLES_PER_FRAME};
use rtpcore::playout::{PlayoutBuffer, PlayoutEvent};
use rtpcore::plc::{energy, Concealer};

/// Generate `n_frames` of speech, packetize, pass through a network with
/// the given loss/jitter, play out through buffer + PLC, and return
/// (original samples, reconstructed samples, playout stats).
fn pipeline(
    n_frames: usize,
    loss: f64,
    jitter_ms: f64,
    seed: u64,
) -> (Vec<i16>, Vec<i16>, rtpcore::playout::PlayoutStats) {
    let mut voice = VoiceSource::new(seed);
    let mut packetizer = Packetizer::new(7, Law::Mu, 0, 0);
    let mut rng = StreamRng::seed_from_u64(seed);
    let mut buffer = PlayoutBuffer::standard();
    let mut plc = Concealer::new();

    let mut original = Vec::with_capacity(n_frames * SAMPLES_PER_FRAME);
    let mut packets: Vec<(f64, RtpPacket)> = Vec::new();
    for i in 0..n_frames {
        let samples = voice.next_samples(SAMPLES_PER_FRAME);
        original.extend_from_slice(&samples);
        let pkt = packetizer.packetize(&samples);
        if rng.coin(loss) {
            continue; // lost in the network
        }
        let arrival = i as f64 * 0.020 + 0.010 + rng.uniform_f64(-jitter_ms, jitter_ms) / 1000.0;
        packets.push((arrival.max(0.0), pkt));
    }
    // Arrival order may be perturbed by jitter.
    packets.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());

    let mut reconstructed = Vec::with_capacity(original.len());
    let pull_events =
        |buffer: &mut PlayoutBuffer, t: f64, plc: &mut Concealer, out: &mut Vec<i16>| {
            for ev in buffer.pull_due(t) {
                match ev {
                    PlayoutEvent::Played(payload) => {
                        let pcm: Vec<i16> = payload.iter().map(|&c| ulaw_decode(c)).collect();
                        out.extend(plc.good_frame(&pcm));
                    }
                    PlayoutEvent::Concealed => out.extend(plc.lost_frame()),
                }
            }
        };
    for (arrival, pkt) in packets {
        pull_events(&mut buffer, arrival, &mut plc, &mut reconstructed);
        buffer.insert(arrival, &pkt.header, pkt.payload);
    }
    // Drain the tail.
    pull_events(
        &mut buffer,
        n_frames as f64 * 0.020 + 1.0,
        &mut plc,
        &mut reconstructed,
    );
    (original, reconstructed, buffer.stats())
}

#[test]
fn clean_network_reconstructs_near_perfectly() {
    let (original, reconstructed, stats) = pipeline(250, 0.0, 0.0, 1);
    assert_eq!(stats.concealed, 0);
    assert_eq!(stats.late_drops, 0);
    assert_eq!(reconstructed.len(), original.len());
    // Only G.711 quantisation error remains: SNR > 30 dB.
    let sig: f64 = original.iter().map(|&s| f64::from(s).powi(2)).sum();
    let err: f64 = original
        .iter()
        .zip(&reconstructed)
        .map(|(&a, &b)| (f64::from(a) - f64::from(b)).powi(2))
        .sum();
    let snr = 10.0 * (sig / err).log10();
    assert!(snr > 30.0, "snr={snr:.1} dB");
}

#[test]
fn lossy_network_conceals_instead_of_gapping() {
    let (original, reconstructed, stats) = pipeline(500, 0.05, 2.0, 2);
    assert!(stats.concealed > 0, "5% loss must conceal: {stats:?}");
    // Output length is continuous: every slot produced a frame.
    assert_eq!(reconstructed.len() % SAMPLES_PER_FRAME, 0);
    assert!(
        reconstructed.len() >= original.len() - 2 * SAMPLES_PER_FRAME,
        "nearly all slots played: {} vs {}",
        reconstructed.len(),
        original.len()
    );
    // Concealed stretches carry energy (not dead air).
    assert!(energy(&reconstructed) > 0.2 * energy(&original));
}

#[test]
fn playout_effective_loss_feeds_the_e_model() {
    let (_, _, stats) = pipeline(1000, 0.03, 3.0, 3);
    let total = stats.played + stats.concealed;
    let effective_loss = stats.concealed as f64 / total as f64;
    // Effective loss ≈ network loss (the buffer absorbs the jitter; only
    // genuinely lost packets conceal).
    assert!(
        (effective_loss - 0.03).abs() < 0.02,
        "effective loss {effective_loss:.3}"
    );
    let mos = voiceq::estimate_mos(&voiceq::EModelInputs {
        network_delay_ms: 10.0,
        jitter_buffer_ms: 40.0,
        packet_loss: effective_loss,
        burst_ratio: 1.0,
        codec: voiceq::CodecProfile::g711(),
        advantage: 0.0,
    });
    assert!(mos > 3.9, "concealed 3% loss stays near-toll: {mos:.2}");
}

#[test]
fn severely_delayed_packet_is_concealed_then_dropped() {
    // Deterministic delay spike: packet 5 arrives 200 ms late against a
    // 40 ms buffer. Its slot conceals when packet 6 plays past it, and the
    // straggler is dropped on arrival.
    let mut voice = VoiceSource::new(9);
    let mut packetizer = Packetizer::new(1, Law::Mu, 0, 0);
    let mut buffer = PlayoutBuffer::standard();
    let mut plc = Concealer::new();
    let mut reconstructed = Vec::new();
    let mut straggler = None;
    for i in 0..20usize {
        let pkt = packetizer.packetize(&voice.next_samples(SAMPLES_PER_FRAME));
        let nominal = i as f64 * 0.020 + 0.010;
        if i == 5 {
            straggler = Some((nominal + 0.200, pkt));
            continue;
        }
        for ev in buffer.pull_due(nominal) {
            match ev {
                PlayoutEvent::Played(p) => {
                    let pcm: Vec<i16> = p.iter().map(|&c| ulaw_decode(c)).collect();
                    reconstructed.extend(plc.good_frame(&pcm));
                }
                PlayoutEvent::Concealed => reconstructed.extend(plc.lost_frame()),
            }
        }
        buffer.insert(nominal, &pkt.header, pkt.payload);
    }
    let _ = buffer.pull_due(0.8);
    assert_eq!(
        buffer.stats().concealed,
        1,
        "slot 5 concealed: {:?}",
        buffer.stats()
    );
    // The straggler shows up long after its slot played.
    let (t, pkt) = straggler.unwrap();
    buffer.insert(t, &pkt.header, pkt.payload);
    assert_eq!(buffer.stats().late_drops, 1, "{:?}", buffer.stats());
}
