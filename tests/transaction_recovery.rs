//! Integration: the RFC 3261 transaction state machines recover from a
//! lossy wire — INVITE retransmission on timer A, response retransmission
//! on timer G, timeout on timer B — driven by the real DES clock.

use des::rng::Distributions;
use des::{EventHandler, Scheduler, SimDuration, SimTime, Simulation, StreamRng};
use sipcore::headers::HeaderName;
use sipcore::message::{format_via, Request, Response};
use sipcore::transaction::{
    build_non2xx_ack, InviteClientState, InviteClientTx, InviteServerState, InviteServerTx,
    TimerConfig, TimerKind, TxAction, TxOutcome,
};
use sipcore::{Method, SipUri, StatusCode};

fn invite() -> Request {
    Request::new(Method::Invite, SipUri::parse("sip:bob@pbx").unwrap())
        .header(HeaderName::Via, format_via("a", 5060, "z9hG4bKrecov"))
        .header(HeaderName::From, "<sip:alice@pbx>;tag=f")
        .header(HeaderName::To, "<sip:bob@pbx>")
        .header(HeaderName::CallId, "recov-1")
        .header(HeaderName::CSeq, "1 INVITE")
}

/// Events in the two-party transaction world.
#[derive(Debug, Clone)]
enum Ev {
    /// Request arrives at the server after network delay.
    ReqArrives(Request),
    /// Response arrives at the client.
    RespArrives(Response),
    /// A client-side transaction timer fires.
    ClientTimer(TimerKind),
    /// A server-side transaction timer fires.
    ServerTimer(TimerKind),
}

/// A lossy wire between an INVITE client transaction and an INVITE server
/// transaction, with the server's TU answering 486 Busy (non-2xx, so both
/// retransmission paths — timer A and timer G — are exercised).
struct LossyWorld {
    client: InviteClientTx,
    server: Option<InviteServerTx>,
    rng: StreamRng,
    loss: f64,
    delay: SimDuration,
    client_deliveries: Vec<StatusCode>,
    client_outcome: Option<TxOutcome>,
    server_outcome: Option<TxOutcome>,
    invite_transmissions: u32,
    acks_seen: u32,
}

impl LossyWorld {
    fn new(loss: f64, seed: u64) -> (Self, Vec<TxAction>) {
        let (client, actions) = InviteClientTx::new(invite(), TimerConfig::default());
        (
            LossyWorld {
                client,
                server: None,
                rng: StreamRng::seed_from_u64(seed),
                loss,
                delay: SimDuration::from_millis(5),
                client_deliveries: Vec::new(),
                client_outcome: None,
                server_outcome: None,
                invite_transmissions: 0,
                acks_seen: 0,
            },
            actions,
        )
    }

    fn run_client_actions(
        &mut self,
        now: SimTime,
        actions: Vec<TxAction>,
        sched: &mut Scheduler<Ev>,
    ) {
        for act in actions {
            match act {
                TxAction::TransmitRequest(req) => {
                    if req.method == Method::Invite {
                        self.invite_transmissions += 1;
                    }
                    if !self.rng.coin(self.loss) {
                        sched.schedule(now + self.delay, Ev::ReqArrives(req));
                    }
                }
                TxAction::TransmitResponse(_) => unreachable!("client sends no responses"),
                TxAction::DeliverResponse(r) => self.client_deliveries.push(r.status),
                TxAction::SetTimer(kind, after) => {
                    sched.schedule(
                        now + SimDuration::from_nanos(after.as_nanos() as u64),
                        Ev::ClientTimer(kind),
                    );
                }
                TxAction::Terminated(outcome) => self.client_outcome = Some(outcome),
            }
        }
    }

    fn run_server_actions(
        &mut self,
        now: SimTime,
        actions: Vec<TxAction>,
        sched: &mut Scheduler<Ev>,
    ) {
        for act in actions {
            match act {
                TxAction::TransmitResponse(resp) => {
                    if !self.rng.coin(self.loss) {
                        sched.schedule(now + self.delay, Ev::RespArrives(resp));
                    }
                }
                TxAction::TransmitRequest(_) | TxAction::DeliverResponse(_) => {}
                TxAction::SetTimer(kind, after) => {
                    sched.schedule(
                        now + SimDuration::from_nanos(after.as_nanos() as u64),
                        Ev::ServerTimer(kind),
                    );
                }
                TxAction::Terminated(outcome) => self.server_outcome = Some(outcome),
            }
        }
    }
}

impl EventHandler<Ev> for LossyWorld {
    fn handle(&mut self, now: SimTime, ev: Ev, sched: &mut Scheduler<Ev>) {
        match ev {
            Ev::ReqArrives(req) => match req.method {
                Method::Invite => match &mut self.server {
                    None => {
                        // TU answers 486 straight away through a fresh
                        // server transaction.
                        let mut server = InviteServerTx::new(TimerConfig::default());
                        let actions =
                            server.send_response(req.make_response(StatusCode::BUSY_HERE));
                        self.server = Some(server);
                        self.run_server_actions(now, actions, sched);
                    }
                    Some(server) => {
                        let actions = server.on_retransmit();
                        self.run_server_actions(now, actions, sched);
                    }
                },
                Method::Ack => {
                    self.acks_seen += 1;
                    if let Some(server) = &mut self.server {
                        let actions = server.on_ack();
                        self.run_server_actions(now, actions, sched);
                    }
                }
                other => panic!("unexpected {other}"),
            },
            Ev::RespArrives(resp) => {
                let actions = self.client.on_response(resp, build_non2xx_ack);
                self.run_client_actions(now, actions, sched);
            }
            Ev::ClientTimer(kind) => {
                let actions = self.client.on_timer(kind);
                self.run_client_actions(now, actions, sched);
            }
            Ev::ServerTimer(kind) => {
                if let Some(server) = &mut self.server {
                    let actions = server.on_timer(kind);
                    self.run_server_actions(now, actions, sched);
                }
            }
        }
    }
}

fn run(loss: f64, seed: u64) -> LossyWorld {
    let (world, initial) = LossyWorld::new(loss, seed);
    let mut sim = Simulation::new(world);
    let acts = initial;
    sim.world
        .run_client_actions(SimTime::ZERO, acts, &mut sim.sched);
    sim.run_until(SimTime::from_secs(120));
    sim.world
}

#[test]
fn reliable_wire_single_exchange() {
    let w = run(0.0, 1);
    assert_eq!(w.client_deliveries, vec![StatusCode::BUSY_HERE]);
    assert_eq!(w.client.state, InviteClientState::Terminated);
    assert_eq!(w.client_outcome, Some(TxOutcome::Normal));
    assert_eq!(w.server_outcome, Some(TxOutcome::Normal));
    assert_eq!(w.invite_transmissions, 1, "no retransmits needed");
    assert!(w.acks_seen >= 1);
}

#[test]
fn lossy_wire_retransmits_until_delivery() {
    // 40% loss per message: the exchange still completes, via timer-driven
    // retransmission, and the TU sees the response exactly once.
    let mut completed = 0;
    for seed in 0..20u64 {
        let w = run(0.40, seed);
        if w.client_outcome == Some(TxOutcome::Normal) {
            completed += 1;
            assert_eq!(
                w.client_deliveries,
                vec![StatusCode::BUSY_HERE],
                "retransmitted finals are absorbed, not re-delivered (seed {seed})"
            );
        }
        // Whatever happened, the state machines ended in terminal states.
        assert!(matches!(
            w.client.state,
            InviteClientState::Terminated | InviteClientState::Completed
        ));
    }
    assert!(
        completed >= 17,
        "40% loss should almost always converge: {completed}/20"
    );
    // And at 40% loss, retransmissions demonstrably happened somewhere.
    let total_tx: u32 = (0..20u64).map(|s| run(0.40, s).invite_transmissions).sum();
    assert!(
        total_tx > 25,
        "retransmissions occurred: {total_tx} for 20 calls"
    );
}

#[test]
fn total_blackout_times_out_cleanly() {
    let w = run(1.0, 3);
    assert_eq!(w.client_outcome, Some(TxOutcome::Timeout), "timer B fired");
    assert!(w.client_deliveries.is_empty());
    assert!(w.server.is_none(), "nothing ever arrived");
    // Timer A doubled from 500 ms until timer B (64·T1 = 32 s): the
    // initial send plus retransmits at 0.5,1,2,...,16 s = 7 total.
    assert_eq!(w.invite_transmissions, 7);
}

#[test]
fn server_gives_up_without_ack() {
    // The ACK never arrives: the server retransmits its 486 on timer G
    // (doubling, capped at T2) and terminates on timer H at 64·T1 = 32 s.
    let mut server = InviteServerTx::new(TimerConfig::default());
    let mut sched = Scheduler::<TimerKind>::new();
    let mut g_retransmits = 0u32;
    let mut h_outcome = None;

    let apply = |server: &mut InviteServerTx,
                 sched: &mut Scheduler<TimerKind>,
                 now: SimTime,
                 actions: Vec<TxAction>,
                 g: &mut u32,
                 outcome: &mut Option<TxOutcome>| {
        for act in actions {
            match act {
                TxAction::TransmitResponse(_) => *g += 1,
                TxAction::SetTimer(kind, after) => {
                    sched.schedule(now + SimDuration::from_nanos(after.as_nanos() as u64), kind)
                }
                TxAction::Terminated(o) => *outcome = Some(o),
                _ => {}
            }
        }
        let _ = server;
    };

    let first = server.send_response(invite().make_response(StatusCode::BUSY_HERE));
    apply(
        &mut server,
        &mut sched,
        SimTime::ZERO,
        first,
        &mut g_retransmits,
        &mut h_outcome,
    );
    let initial_transmit = g_retransmits;
    assert_eq!(initial_transmit, 1);

    while h_outcome.is_none() {
        let (now, kind) = sched.pop().expect("timers pending until H fires");
        let actions = server.on_timer(kind);
        apply(
            &mut server,
            &mut sched,
            now,
            actions,
            &mut g_retransmits,
            &mut h_outcome,
        );
    }

    assert_eq!(h_outcome, Some(TxOutcome::Timeout), "timer H fired");
    assert_eq!(server.state, InviteServerState::Terminated);
    // G fires at 0.5, 1.5, 3.5, 7.5 s then every 4 s until H at 32 s:
    // ten retransmissions beyond the initial transmit.
    assert!(
        g_retransmits - initial_transmit >= 8,
        "timer G retransmitted: {}",
        g_retransmits - initial_transmit
    );
}
