//! Property tests for the campaign-scale sweep executor: aggregation
//! (per-cell means, CI half-widths, report ordering) must be
//! bit-identical across 1/2/4/8 executor workers and across task
//! completion orders. The executor keys every result slot by task
//! index, so neither the pool width nor the steal/completion schedule
//! may leak into what the caller observes — including for cells whose
//! physics are perturbed by a mid-window fault schedule.

use capacity::experiment::{EmpiricalConfig, EmpiricalRunner, MediaMode};
use capacity::sweep::{mean_ci, run_sweep, run_sweep_reference, SweepTask};
use faults::{FaultKind, FaultSchedule};
use proptest::prelude::*;
use proptest::sample::select;

/// splitmix64 — a cheap, deterministic stand-in workload so the pure
/// executor property can afford thousands of tasks per case.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A small signalling-only cell cheap enough for debug-build proptest
/// cases; `faulted` adds a flash crowd erupting mid-window, so one cell
/// of the sweep exercises the fault-schedule plumbing.
fn sweep_cfg(seed: u64, erlangs: f64, faulted: bool) -> EmpiricalConfig {
    let mut cfg = EmpiricalConfig::signalling_only(erlangs, seed);
    cfg.media = MediaMode::Off;
    cfg.placement_window_s = 6.0;
    cfg.channels = 12;
    if faulted {
        cfg.faults = FaultSchedule::new().at(
            3.0,
            FaultKind::FlashCrowd {
                rate_multiplier: 3.0,
                duration: des::SimDuration::from_secs_f64(2.0),
            },
        );
    }
    cfg
}

proptest! {
    /// Pure-function workload: the parallel executor must return the
    /// exact `Vec` the sequential reference produces, at every pool
    /// width, and independently of the cost model — costs only steer
    /// scheduling (hence completion order), never results. Rotating the
    /// costs across tasks forces a different longest-expected-first
    /// deal and a different steal pattern on the same task set.
    #[test]
    fn executor_results_are_independent_of_width_and_completion_order(
        seed in 0u64..1_000_000,
        cells in 1usize..7,
        reps in 1u64..6,
        cost_salt in 0u64..1_000_000,
        width in select(vec![1usize, 2, 4, 8]),
    ) {
        let tasks: Vec<SweepTask> = (0..cells)
            .flat_map(|cell| (0..reps).map(move |rep| SweepTask {
                cell,
                rep,
                cost: mix(cost_salt ^ ((cell as u64) << 32) ^ rep) % 1_000,
            }))
            .collect();
        let work = |t: SweepTask| mix(seed ^ ((t.cell as u64) << 40) ^ t.rep);
        let expect = run_sweep_reference(&tasks, work);

        let _g = des::pool::test_guard();
        des::pool::configure(width);
        prop_assert_eq!(run_sweep(&tasks, work), expect.clone());

        // Same tasks, rotated costs: a different execution order must
        // collapse to the same index-keyed result vector.
        let n = tasks.len();
        let rotated: Vec<SweepTask> = tasks
            .iter()
            .enumerate()
            .map(|(i, t)| SweepTask { cost: tasks[(i + 1) % n].cost, ..*t })
            .collect();
        prop_assert_eq!(run_sweep(&rotated, work), expect);
    }

    /// Real-physics aggregation: a three-cell grid (the middle cell
    /// carrying a mid-window flash-crowd fault schedule) swept at a
    /// sampled width must reproduce the sequential reference bit for
    /// bit — run digests, per-cell mean blocking, CI half-widths, and
    /// the rendered report ordering all compare exactly.
    #[test]
    fn aggregation_is_bit_identical_across_widths_with_fault_cell(
        seed in 1u64..10_000,
        lo in 4.0f64..8.0,
        width in select(vec![1usize, 2, 4, 8]),
    ) {
        const REPS: u64 = 2;
        let loads = [lo, lo + 3.0, lo + 6.0];
        let tasks: Vec<SweepTask> = (0..loads.len())
            .flat_map(|cell| (0..REPS).map(move |rep| SweepTask { cell, rep, cost: 1 }))
            .collect();
        let work = |t: SweepTask| {
            let cfg = sweep_cfg(
                des::stream_seed(seed, t.rep),
                loads[t.cell],
                t.cell == 1,
            );
            let r = EmpiricalRunner::run(cfg);
            (r.digest(), r.observed_pb)
        };
        let reference = run_sweep_reference(&tasks, work);

        let _g = des::pool::test_guard();
        des::pool::configure(width);
        let parallel = run_sweep(&tasks, work);
        prop_assert_eq!(&parallel, &reference, "run digests diverged at width {}", width);

        // Aggregate exactly the way the figure drivers do and compare
        // the statistics and the report text, not just the raw runs.
        let render = |runs: &[(u64, f64)]| -> (Vec<(u64, u64)>, String) {
            let mut stats = Vec::new();
            let mut report = String::new();
            for (cell, chunk) in runs.chunks(REPS as usize).enumerate() {
                let samples: Vec<f64> = chunk.iter().map(|&(_, pb)| pb).collect();
                let (mean, hw) = mean_ci(&samples);
                stats.push((mean.to_bits(), hw.to_bits()));
                report.push_str(&format!("cell {cell}: pb {mean:.9e} ± {hw:.9e}\n"));
            }
            (stats, report)
        };
        prop_assert_eq!(render(&parallel), render(&reference));
    }
}
