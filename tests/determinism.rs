//! Integration: a run is a pure function of its seed — the property that
//! makes parallel sweeps and regression comparisons trustworthy.

use asterisk_capacity::prelude::*;
use capacity::experiment::MediaMode;
use des::{Scheduler, SchedulerKind, SimTime};
use loadgen::HoldingDist;

fn cfg(seed: u64, media: MediaMode) -> EmpiricalConfig {
    EmpiricalConfig {
        erlangs: 8.0,
        servers: 1,
        holding: HoldingDist::Exponential(15.0),
        placement_window_s: 60.0,
        channels: 10,
        media,
        pickup_delay: des::SimDuration::from_millis(500),
        link_loss_probability: 0.002,
        silence_suppression: false,
        capture_traffic: false,
        user_pool: 10,
        max_calls_per_user: None,
        faults: faults::FaultSchedule::new(),
        overload: None,
        overload_law: None,
        retry: None,
        threads: None,
        population: None,
        seed,
    }
}

#[test]
fn identical_seeds_identical_everything() {
    let media = MediaMode::PerPacket { encode_every: 20 };
    let a = EmpiricalRunner::run(cfg(99, media));
    let b = EmpiricalRunner::run(cfg(99, media));
    assert_eq!(a.attempted, b.attempted);
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.blocked, b.blocked);
    assert_eq!(a.failed, b.failed);
    assert_eq!(a.events_processed, b.events_processed);
    assert_eq!(a.monitor.rtp_packets, b.monitor.rtp_packets);
    assert_eq!(a.monitor.sip_total, b.monitor.sip_total);
    assert_eq!(a.monitor.sip_requests, b.monitor.sip_requests);
    assert_eq!(a.monitor.sip_responses, b.monitor.sip_responses);
    assert_eq!(a.peak_channels, b.peak_channels);
    // Float outputs are bit-identical too: same event order, same arithmetic.
    assert_eq!(a.observed_pb.to_bits(), b.observed_pb.to_bits());
    assert_eq!(a.monitor.mos_mean.to_bits(), b.monitor.mos_mean.to_bits());
    assert_eq!(a.cpu_mean.to_bits(), b.cpu_mean.to_bits());
}

#[test]
fn seed_changes_the_realisation_not_the_physics() {
    let media = MediaMode::Off;
    let a = EmpiricalRunner::run(cfg(1, media));
    let b = EmpiricalRunner::run(cfg(2, media));
    // Different draws...
    assert_ne!(a.events_processed, b.events_processed);
    // ...same physics: both runs respect conservation and bounds.
    for r in [&a, &b] {
        assert_eq!(
            r.attempted,
            r.completed + r.blocked + r.failed + r.abandoned
        );
        assert!(r.peak_channels <= 10);
        assert!((0.0..=1.0).contains(&r.observed_pb));
    }
}

#[test]
fn heap_and_wheel_backends_produce_identical_results() {
    // The future-event-list backend is an implementation detail: for the
    // same seed, heap and timing-wheel runs must agree on every output —
    // counts, blocking, MOS — bit for bit, on both media paths.
    let media = MediaMode::PerPacket { encode_every: 20 };
    for media_path in [MediaPath::Coalesced, MediaPath::PerTick] {
        let run = |scheduler| {
            EmpiricalRunner::run_with(
                cfg(42, media),
                SimOptions {
                    scheduler,
                    media_path,
                    ..SimOptions::default()
                },
            )
        };
        let heap = run(SchedulerKind::Heap);
        let wheel = run(SchedulerKind::Wheel);
        assert_eq!(heap.digest(), wheel.digest(), "{media_path:?}");
        assert_eq!(heap.attempted, wheel.attempted);
        assert_eq!(heap.completed, wheel.completed);
        assert_eq!(heap.blocked, wheel.blocked);
        assert_eq!(heap.events_processed, wheel.events_processed);
        assert_eq!(heap.monitor.rtp_packets, wheel.monitor.rtp_packets);
        assert_eq!(heap.observed_pb.to_bits(), wheel.observed_pb.to_bits());
        assert_eq!(
            heap.monitor.mos_mean.to_bits(),
            wheel.monitor.mos_mean.to_bits()
        );
    }
}

#[test]
fn fifo_tie_break_identical_under_10k_simultaneous_events() {
    // 10k events scheduled at the same instant (plus stragglers on both
    // sides) must pop in exact insertion order from both backends.
    let mut heap = Scheduler::with_kind(SchedulerKind::Heap);
    let mut wheel = Scheduler::with_kind(SchedulerKind::Wheel);
    let t = SimTime::from_secs(1);
    for s in [&mut heap, &mut wheel] {
        s.schedule(SimTime::from_millis(999), u32::MAX);
        for i in 0..10_000u32 {
            s.schedule(t, i);
        }
        s.schedule(SimTime::from_millis(1001), u32::MAX - 1);
    }
    let mut popped = 0u32;
    loop {
        let a = heap.pop();
        let b = wheel.pop();
        assert_eq!(a, b, "backends diverged after {popped} pops");
        match a {
            Some((at, ev)) if at == t => {
                assert_eq!(ev, popped, "FIFO order violated");
                popped += 1;
            }
            Some(_) => {}
            None => break,
        }
    }
    assert_eq!(popped, 10_000);
}

#[test]
fn parallel_fig6_is_reproducible() {
    // The rayon-parallel sweep must give identical numbers on every
    // invocation regardless of thread interleaving (per-run RNG streams).
    let loads = [15.0, 25.0];
    let x = capacity::figures::fig6(&loads, 2, 7);
    let y = capacity::figures::fig6(&loads, 2, 7);
    assert_eq!(x.len(), y.len());
    for (p, q) in x.iter().zip(&y) {
        assert_eq!(p.empirical_pb_pct.to_bits(), q.empirical_pb_pct.to_bits());
        assert_eq!(p.erlangs, q.erlangs);
    }
}
