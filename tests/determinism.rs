//! Integration: a run is a pure function of its seed — the property that
//! makes parallel sweeps and regression comparisons trustworthy.

use asterisk_capacity::prelude::*;
use capacity::experiment::MediaMode;
use loadgen::HoldingDist;

fn cfg(seed: u64, media: MediaMode) -> EmpiricalConfig {
    EmpiricalConfig {
        erlangs: 8.0,
        servers: 1,
        holding: HoldingDist::Exponential(15.0),
        placement_window_s: 60.0,
        channels: 10,
        media,
        pickup_delay: des::SimDuration::from_millis(500),
        link_loss_probability: 0.002,
        silence_suppression: false,
        capture_traffic: false,
        user_pool: 10,
        max_calls_per_user: None,
        faults: faults::FaultSchedule::new(),
        overload: None,
        retry: None,
        seed,
    }
}

#[test]
fn identical_seeds_identical_everything() {
    let media = MediaMode::PerPacket { encode_every: 20 };
    let a = EmpiricalRunner::run(cfg(99, media));
    let b = EmpiricalRunner::run(cfg(99, media));
    assert_eq!(a.attempted, b.attempted);
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.blocked, b.blocked);
    assert_eq!(a.failed, b.failed);
    assert_eq!(a.events_processed, b.events_processed);
    assert_eq!(a.monitor.rtp_packets, b.monitor.rtp_packets);
    assert_eq!(a.monitor.sip_total, b.monitor.sip_total);
    assert_eq!(a.monitor.sip_requests, b.monitor.sip_requests);
    assert_eq!(a.monitor.sip_responses, b.monitor.sip_responses);
    assert_eq!(a.peak_channels, b.peak_channels);
    // Float outputs are bit-identical too: same event order, same arithmetic.
    assert_eq!(a.observed_pb.to_bits(), b.observed_pb.to_bits());
    assert_eq!(a.monitor.mos_mean.to_bits(), b.monitor.mos_mean.to_bits());
    assert_eq!(a.cpu_mean.to_bits(), b.cpu_mean.to_bits());
}

#[test]
fn seed_changes_the_realisation_not_the_physics() {
    let media = MediaMode::Off;
    let a = EmpiricalRunner::run(cfg(1, media));
    let b = EmpiricalRunner::run(cfg(2, media));
    // Different draws...
    assert_ne!(a.events_processed, b.events_processed);
    // ...same physics: both runs respect conservation and bounds.
    for r in [&a, &b] {
        assert_eq!(
            r.attempted,
            r.completed + r.blocked + r.failed + r.abandoned
        );
        assert!(r.peak_channels <= 10);
        assert!((0.0..=1.0).contains(&r.observed_pb));
    }
}

#[test]
fn parallel_fig6_is_reproducible() {
    // The rayon-parallel sweep must give identical numbers on every
    // invocation regardless of thread interleaving (per-run RNG streams).
    let loads = [15.0, 25.0];
    let x = capacity::figures::fig6(&loads, 2, 7);
    let y = capacity::figures::fig6(&loads, 2, 7);
    assert_eq!(x.len(), y.len());
    for (p, q) in x.iter().zip(&y) {
        assert_eq!(p.empirical_pb_pct.to_bits(), q.empirical_pb_pct.to_bits());
        assert_eq!(p.erlangs, q.erlangs);
    }
}
