//! Integration: the media plane end to end — packet rates, relay
//! correctness and voice-quality measurement through the whole stack.

use asterisk_capacity::prelude::*;
use capacity::experiment::MediaMode;
use des::SimDuration;
use loadgen::HoldingDist;

fn media_cfg(seed: u64) -> EmpiricalConfig {
    EmpiricalConfig {
        erlangs: 3.0,
        servers: 1,
        holding: HoldingDist::Fixed(12.0),
        placement_window_s: 30.0,
        channels: 10,
        media: MediaMode::PerPacket { encode_every: 1 }, // full G.711 every frame
        pickup_delay: SimDuration::ZERO,
        link_loss_probability: 0.0,
        silence_suppression: false,
        capture_traffic: false,
        user_pool: 10,
        max_calls_per_user: None,
        faults: faults::FaultSchedule::new(),
        overload: None,
        overload_law: None,
        retry: None,
        threads: None,
        population: None,
        seed,
    }
}

#[test]
fn endpoints_receive_100_packets_per_call_second() {
    let r = EmpiricalRunner::run(media_cfg(31));
    assert!(r.completed >= 3, "need some calls: {r:?}");
    let per_call_second = r.monitor.rtp_packets as f64 / (r.completed as f64 * 12.0);
    // 50 pps towards the caller + 50 pps towards the callee.
    assert!(
        (per_call_second - 100.0).abs() < 6.0,
        "observed {per_call_second} pkt/call-second"
    );
}

#[test]
fn clean_lan_scores_toll_quality_for_every_call() {
    let r = EmpiricalRunner::run(media_cfg(32));
    assert!(r.monitor.calls_scored >= 3);
    assert!(r.monitor.mos_mean > 4.3, "mean {}", r.monitor.mos_mean);
    assert!(r.monitor.mos_min > 4.2, "worst call {}", r.monitor.mos_min);
    assert!(r.monitor.mean_loss < 1e-6);
    assert!(r.monitor.mean_jitter_ms < 1.0, "switched LAN jitter tiny");
}

#[test]
fn sparse_encoding_matches_full_encoding_counts() {
    // The encode_every fast path must not change anything observable
    // except CPU time: same packets, same sequence numbers, same MOS
    // inputs (payload bytes differ, which nothing downstream reads).
    let full = EmpiricalRunner::run(media_cfg(33));
    let sparse = EmpiricalRunner::run(EmpiricalConfig {
        media: MediaMode::PerPacket { encode_every: 100 },
        ..media_cfg(33)
    });
    assert_eq!(full.monitor.rtp_packets, sparse.monitor.rtp_packets);
    assert_eq!(full.attempted, sparse.attempted);
    assert_eq!(full.completed, sparse.completed);
    assert_eq!(full.monitor.sip_total, sparse.monitor.sip_total);
    assert!((full.monitor.mos_mean - sparse.monitor.mos_mean).abs() < 1e-9);
}

#[test]
fn pbx_relays_media_without_loss_on_a_clean_lan() {
    let r = EmpiricalRunner::run(media_cfg(34));
    // Everything endpoints received passed through the PBX relay; on a
    // clean network nothing is dropped in flight.
    assert!(r.monitor.mean_loss < 1e-6);
    assert!(r.monitor.rtp_packets > 1000);
}

#[test]
fn media_stops_after_hangup() {
    // With h = 12 s calls and a 30 s placement window the run drains; no
    // media session survives to the horizon (no runaway ticks).
    let r = EmpiricalRunner::run(media_cfg(35));
    assert_eq!(r.abandoned, 0, "all calls finished in the window: {r:?}");
    // Upper bound on packets: strictly fewer than if streams never stopped.
    let upper = (r.completed + r.blocked) as f64 * (12.5 * 100.0);
    assert!((r.monitor.rtp_packets as f64) < upper * 1.2);
}

#[test]
fn cpu_cost_scales_with_media_volume() {
    let with_media = EmpiricalRunner::run(media_cfg(36));
    let without = EmpiricalRunner::run(EmpiricalConfig {
        media: MediaMode::Off,
        ..media_cfg(36)
    });
    // At 3 E the RTP relay adds a small but unmistakable margin over the
    // 10% base load (~0.4 pp; full Table-I workloads add tens of points).
    assert!(
        with_media.cpu_mean > without.cpu_mean + 0.003,
        "media {} vs signalling-only {}",
        with_media.cpu_mean,
        without.cpu_mean
    );
}
