//! Integration: the fault-injection and overload-control layer.
//!
//! Three end-to-end scenarios on the simulated testbed:
//!  1. a mid-run link partition drops the answer rate, healing restores
//!     it, and the recovery analysis reports a positive time-to-recover;
//!  2. a PBX crash flushes channels and registrations, the supervisor
//!     restarts it, endpoints re-REGISTER and the system re-converges;
//!  3. a flash crowd against a small pool: with overload control on, the
//!     PBX sheds with 503 + Retry-After, UACs retry after backoff and
//!     complete, and goodput beats the same scenario without shedding.
//!
//! Every scenario is deterministic: the same seed yields the same run.

use asterisk_capacity::prelude::*;
use capacity::experiment::{run_world, EmpiricalRunner, MediaMode};
use capacity::figures::recovery_timeline;
use capacity::world::pbx_node;
use des::{SimDuration, SimTime};
use loadgen::{HoldingDist, RetryPolicy};
use netsim::topology::nodes;
use pbx_sim::OverloadControl;

/// Signalling-only base config with enough traffic for a readable
/// answers-per-second signal (~5 calls/s).
fn base_config(seed: u64) -> EmpiricalConfig {
    let mut cfg = EmpiricalConfig::smoke(seed);
    cfg.erlangs = 50.0;
    cfg.channels = 100;
    cfg.holding = HoldingDist::Fixed(10.0);
    cfg.placement_window_s = 100.0;
    cfg.user_pool = 40;
    cfg.media = MediaMode::Off;
    cfg
}

#[test]
fn link_partition_dips_answer_rate_and_recovers_after_heal() {
    let mut cfg = base_config(101);
    cfg.faults = FaultSchedule::new()
        .at(
            40.0,
            FaultKind::LinkPartition {
                a: pbx_node(0),
                b: nodes::SWITCH,
            },
        )
        .at(
            55.0,
            FaultKind::LinkHeal {
                a: pbx_node(0),
                b: nodes::SWITCH,
            },
        );
    let r = EmpiricalRunner::run(cfg.clone());
    assert!(r.completed > 100, "traffic flowed: {}", r.completed);

    // The heal is a consequence, not a disruption: one recovery entry.
    assert_eq!(r.recoveries.len(), 1, "{:?}", r.recoveries);
    let rec = &r.recoveries[0];
    assert!(rec.baseline_rate > 2.0, "pre-fault rate: {rec:?}");
    let ttr = rec.time_to_recover_s.expect("recovers after the heal");
    // Dark for 15 s: recovery cannot be observed before the heal, and
    // must be observed within the horizon.
    assert!(ttr >= 15.0, "no recovery while partitioned: ttr = {ttr}");
    assert!(ttr < 45.0, "recovers soon after heal: ttr = {ttr}");

    // The timeline shows the dip directly: answers during the outage are
    // far below the pre-fault level.
    let tl = recovery_timeline(cfg, 120.0);
    let rate = |from: usize, to: usize| -> f64 {
        let s: u64 = tl[from..to].iter().map(|&(_, n)| n).sum();
        s as f64 / (to - from) as f64
    };
    let before = rate(25, 39);
    let during = rate(42, 54);
    let after = rate(70, 90);
    assert!(
        during < before * 0.2,
        "partition starves answers: before={before} during={during}"
    );
    assert!(
        after > before * 0.7,
        "rate returns after heal: before={before} after={after}"
    );
}

#[test]
fn pbx_crash_flushes_state_and_reconverges_after_restart() {
    let mut cfg = base_config(202);
    let user_pool = cfg.user_pool;
    cfg.faults = FaultSchedule::new().at(
        40.0,
        FaultKind::PbxCrash {
            pbx: 0,
            restart_after: SimDuration::from_secs(3),
        },
    );
    let sim = run_world(cfg, SimTime::from_secs(100));
    let world = &sim.world;

    assert_eq!(world.pbxes[0].stats().crashes, 1);
    assert!(!world.pbx_is_down(0), "supervisor restarted it");
    // Registrations were lost in the crash and rebuilt by the
    // re-REGISTER storm: both pools are bound again.
    assert_eq!(
        world.pbxes[0].registrar.len(),
        2 * user_pool as usize,
        "callers and callees re-registered"
    );
    // The channel pool was flushed; the re-armed gauge shows refill.
    assert!(world.pbxes[0].pool.in_use() <= world.pbxes[0].pool.capacity());

    // Answers stop while dark and resume after the restart.
    let tl = world.answers_per_second();
    let sum =
        |from: usize, to: usize| -> u64 { tl[from.min(tl.len())..to.min(tl.len())].iter().sum() };
    assert!(
        sum(30, 40) > 20,
        "healthy before the crash: {}",
        sum(30, 40)
    );
    assert_eq!(sum(41, 43), 0, "dark while crashed");
    assert!(sum(45, 60) > 20, "re-converged: {}", sum(45, 60));
}

/// Flash-crowd scenario shared by the shedding-on and shedding-off runs.
fn flash_config(seed: u64) -> EmpiricalConfig {
    let mut cfg = EmpiricalConfig::smoke(seed);
    cfg.erlangs = 6.0;
    cfg.channels = 12;
    cfg.holding = HoldingDist::Fixed(10.0);
    cfg.placement_window_s = 80.0;
    cfg.user_pool = 30;
    cfg.media = MediaMode::Off;
    cfg.faults = FaultSchedule::new().at(
        30.0,
        FaultKind::FlashCrowd {
            rate_multiplier: 8.0,
            duration: SimDuration::from_secs(10),
        },
    );
    cfg
}

#[test]
fn flash_crowd_sheds_then_retries_recover_goodput() {
    let mut with_shed = flash_config(303);
    with_shed.overload = Some(OverloadControl {
        high_watermark: 0.85,
        low_watermark: 0.5,
        retry_after: SimDuration::from_secs(4),
    });
    with_shed.retry = Some(RetryPolicy {
        max_retries: 4,
        base_backoff: SimDuration::from_secs(2),
        max_backoff: SimDuration::from_secs(16),
    });
    let shed_run = EmpiricalRunner::run(with_shed);

    let plain = flash_config(303);
    let plain_run = EmpiricalRunner::run(plain);

    // The burst saturates the pool either way.
    assert!(
        plain_run.blocked > 0,
        "without control the burst hard-blocks: {plain_run:?}"
    );
    // With control: 503s were sent, UACs retried, and some retried calls
    // completed as ShedThenOk.
    assert!(shed_run.shed > 0, "overload control engaged: {shed_run:?}");
    assert!(shed_run.retries > 0, "UACs retried: {shed_run:?}");
    assert!(
        shed_run.shed_then_ok > 0,
        "retries completed after backoff: {shed_run:?}"
    );
    // Shedding converts would-be hard blocks into delayed completions:
    // goodput (full conversations carried) beats the uncontrolled run.
    assert!(
        shed_run.goodput > plain_run.goodput,
        "goodput with shedding {} <= without {}",
        shed_run.goodput,
        plain_run.goodput
    );
    assert_eq!(shed_run.goodput, shed_run.completed + shed_run.shed_then_ok);
}

#[test]
fn flash_crowd_during_link_degrade_is_deterministic_and_recovers() {
    // Overlapping fault windows: the uplink degrades to a lossy wire at
    // 25 s (healing at 55 s) and a flash crowd breaks out at 35 s, fully
    // inside the degrade window. The schedule is built out of order on
    // purpose — FaultSchedule must keep the firing order time-sorted.
    let cfg = |seed: u64| {
        let mut cfg = base_config(seed);
        let degraded = netsim::LinkParams {
            loss_probability: 0.02,
            ..netsim::LinkParams::fast_ethernet()
        };
        cfg.overload = Some(OverloadControl::default_watermarks());
        cfg.retry = Some(RetryPolicy::default());
        cfg.faults = FaultSchedule::new()
            .at(
                55.0,
                FaultKind::LinkHeal {
                    a: pbx_node(0),
                    b: nodes::SWITCH,
                },
            )
            .at(
                35.0,
                FaultKind::FlashCrowd {
                    rate_multiplier: 5.0,
                    duration: SimDuration::from_secs(10),
                },
            )
            .at(
                25.0,
                FaultKind::LinkDegrade {
                    a: pbx_node(0),
                    b: nodes::SWITCH,
                    params: degraded,
                },
            );
        cfg
    };
    let a = EmpiricalRunner::run(cfg(909));
    let b = EmpiricalRunner::run(cfg(909));
    assert_eq!(
        a.digest(),
        b.digest(),
        "overlapping fault windows stay deterministic under a fixed seed"
    );
    let c = EmpiricalRunner::run(cfg(910));
    assert_ne!(a.digest(), c.digest(), "the seed still matters");

    // The compound disruption really happened and the run survived it.
    assert!(a.completed > 0, "traffic flowed through the overlap: {a:?}");
    // The degrade (not the heal, not the crowd) is the one disruption
    // the recovery analysis tracks.
    assert_eq!(a.recoveries.len(), 1, "{:?}", a.recoveries);
    assert!(a.recoveries[0].fault.contains("LinkDegrade"));
    // Censoring bookkeeping: the horizon field is always populated.
    assert!(a.recoveries[0].censor_horizon_s > 0.0);
}

#[test]
fn fault_runs_are_deterministic() {
    let run = |seed: u64| {
        let mut cfg = flash_config(seed);
        cfg.overload = Some(OverloadControl::default_watermarks());
        cfg.retry = Some(RetryPolicy::default());
        cfg.faults = cfg.faults.at(
            50.0,
            FaultKind::PbxCrash {
                pbx: 0,
                restart_after: SimDuration::from_secs(2),
            },
        );
        let r = EmpiricalRunner::run(cfg);
        (
            r.attempted,
            r.completed,
            r.blocked,
            r.shed,
            r.retries,
            r.shed_then_ok,
            r.events_processed,
            r.monitor.sip_total,
        )
    };
    let a = run(77);
    let b = run(77);
    assert_eq!(a, b, "same seed, same journal");
    let c = run(78);
    assert_ne!(a, c, "different seed, different run");
}
