//! Integration: the pluggable overload-control suite end-to-end.
//!
//! The `overload` crate's laws plug into the PBX admission hook and (for
//! the feedback family) pace the UAC side through `X-Overload-Control`
//! response headers. These tests pin the properties the suite is built
//! on:
//!
//!  1. the pluggable `Hysteresis503` law is *byte-identical* to the
//!     legacy inline hysteresis — same actions, same wire bytes, same
//!     [`RunResult::digest`] — so swapping the implementation cannot
//!     silently move the physics;
//!  2. every law runs a flash-crowd scenario deterministically and
//!     carries traffic;
//!  3. rate/window feedback actually reaches the caller and changes the
//!     run (the feedback header is on the wire);
//!  4. MOS-aware admission sheds on a degraded link even with free
//!     channels — the 3D-CAC property classic CAC cannot express.

use asterisk_capacity::prelude::*;
use capacity::experiment::MediaMode;
use des::SimDuration;
use loadgen::{HoldingDist, RetryPolicy};
use pbx_sim::OverloadControl;

/// Flash-crowd cell: a small pool driven hard enough that admission
/// control has real work to do (mirrors `tests/fault_schedule.rs`).
fn flash_config(seed: u64) -> EmpiricalConfig {
    let mut cfg = EmpiricalConfig::smoke(seed);
    cfg.erlangs = 6.0;
    cfg.channels = 12;
    cfg.holding = HoldingDist::Fixed(10.0);
    cfg.placement_window_s = 80.0;
    cfg.user_pool = 30;
    cfg.media = MediaMode::Off;
    cfg.faults = FaultSchedule::new().at(
        30.0,
        FaultKind::FlashCrowd {
            rate_multiplier: 8.0,
            duration: SimDuration::from_secs(10),
        },
    );
    cfg.retry = Some(RetryPolicy {
        max_retries: 4,
        base_backoff: SimDuration::from_secs(2),
        max_backoff: SimDuration::from_secs(16),
    });
    cfg
}

#[test]
fn pluggable_hysteresis_digest_matches_legacy_inline_shed() {
    let mut legacy = flash_config(303);
    legacy.overload = Some(OverloadControl {
        high_watermark: 0.85,
        low_watermark: 0.5,
        retry_after: SimDuration::from_secs(4),
    });
    let legacy_run = EmpiricalRunner::run(legacy);

    let mut plug = flash_config(303);
    plug.overload_law = Some(ControlLaw::Hysteresis {
        high_watermark: 0.85,
        low_watermark: 0.5,
        retry_after: SimDuration::from_secs(4),
    });
    let plug_run = EmpiricalRunner::run(plug);

    // Both engaged: this scenario exercises the shed/retry path, not
    // just the idle fast path.
    assert!(legacy_run.shed > 0, "legacy hysteresis engaged");
    assert!(plug_run.shed > 0, "pluggable hysteresis engaged");
    // The strong claim: identical physics, down to every event count
    // and float bit pattern the digest folds.
    assert_eq!(
        legacy_run.digest(),
        plug_run.digest(),
        "pluggable Hysteresis503 must replay the legacy inline shed exactly: \
         legacy {legacy_run:?} vs pluggable {plug_run:?}"
    );
}

#[test]
fn every_law_survives_a_flash_crowd_deterministically() {
    let laws = [
        ControlLaw::hysteresis_default(),
        ControlLaw::rate_based_for(2.0),
        ControlLaw::window_based_for(12),
        ControlLaw::signal_based_default(),
        ControlLaw::mos_cac_default(),
    ];
    for law in laws {
        let run_once = || {
            let mut cfg = flash_config(404);
            cfg.overload_law = Some(law);
            EmpiricalRunner::run(cfg)
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(
            a.digest(),
            b.digest(),
            "law {} must be deterministic under a fixed seed",
            law.name()
        );
        assert!(a.goodput > 0, "law {} carried traffic: {a:?}", law.name());
        assert_eq!(a.goodput, a.completed + a.shed_then_ok, "{}", law.name());
    }
}

#[test]
fn rate_feedback_reaches_the_caller_and_changes_the_run() {
    // Same cell, no admission law: the baseline the feedback run must
    // diverge from (the X-Overload-Control header rides every Trying,
    // and the caller-side pacer reshapes the INVITE schedule).
    let plain = EmpiricalRunner::run(flash_config(505));

    let mut cfg = flash_config(505);
    cfg.overload_law = Some(ControlLaw::rate_based_for(2.0));
    let paced = EmpiricalRunner::run(cfg);

    assert_ne!(
        plain.digest(),
        paced.digest(),
        "rate feedback must be visible in the physics"
    );
    assert!(
        paced.goodput > 0,
        "paced run still carries calls: {paced:?}"
    );
    // Pacing defers intents rather than firing them into a full pool:
    // the paced run never hard-blocks more calls than the uncontrolled
    // one.
    assert!(
        paced.blocked <= plain.blocked,
        "pacing should not increase hard blocks: paced {} vs plain {}",
        paced.blocked,
        plain.blocked
    );
}

#[test]
fn window_feedback_caps_concurrency_through_the_crowd() {
    let mut cfg = flash_config(606);
    cfg.overload_law = Some(ControlLaw::window_based_for(12));
    let r = EmpiricalRunner::run(cfg);
    assert!(r.goodput > 0, "window-paced run carries calls: {r:?}");
    // The caller-side window is sized to the channel pool, so admitted
    // concurrency can never overrun it by more than the signalling in
    // flight.
    assert!(
        r.peak_channels <= 12,
        "window cap respected: peak {} channels",
        r.peak_channels
    );
}

#[test]
fn mos_cac_sheds_on_degraded_link_despite_free_channels() {
    // Media on and a badly lossy wire: channel occupancy stays low but
    // predicted MOS collapses below the 3.5 floor, so the 3D-CAC law
    // must shed where classic channel-counting CAC admits.
    let mut cfg = EmpiricalConfig::smoke(707);
    cfg.erlangs = 3.0;
    cfg.channels = 50;
    cfg.holding = HoldingDist::Fixed(10.0);
    cfg.placement_window_s = 40.0;
    cfg.link_loss_probability = 0.12;
    cfg.overload_law = Some(ControlLaw::mos_cac_default());
    let r = EmpiricalRunner::run(cfg);

    assert!(
        r.shed > 0,
        "MOS-aware admission sheds on predicted quality: {r:?}"
    );
    assert!(
        r.peak_channels < 50,
        "the pool never filled — quality, not capacity, was the gate"
    );

    // Heal the wire and the same cell admits everything.
    let mut clean = EmpiricalConfig::smoke(707);
    clean.erlangs = 3.0;
    clean.channels = 50;
    clean.holding = HoldingDist::Fixed(10.0);
    clean.placement_window_s = 40.0;
    clean.link_loss_probability = 0.0;
    clean.overload_law = Some(ControlLaw::mos_cac_default());
    let c = EmpiricalRunner::run(clean);
    assert_eq!(c.shed, 0, "clean link, nothing shed: {c:?}");
    assert!(c.completed > 0, "clean link carries calls");
}
