//! The paper's §IV "effective call policy" proposal, implemented and
//! measured: per-user concurrent-call ceilings under overload.
//!
//! ```sh
//! cargo run --release --example call_policy
//! ```

use capacity::policy::{policy_study, render_policy};

fn main() {
    // Overload scenario: 60 heavy users jointly offer 220 E to the
    // 165-channel server (≈3.7 concurrent calls each, unconstrained).
    println!("offered load 220 E from 60 users onto 165 channels\n");
    let limits = [None, Some(4), Some(3), Some(2), Some(1)];
    let rows = policy_study(220.0, 60, &limits, 3, 42);
    print!("{}", render_policy(&rows));

    println!();
    println!("Reading: with no policy the channel pool does all the refusing");
    println!("(blocked calls). Tight ceilings shift refusals to the policy —");
    println!("protecting channel headroom for other users, the paper's goal —");
    println!("at the cost of refusing heavy callers early.");
}
