//! The UnB VoWiFi dimensioning study — the story behind the paper's
//! Fig. 7 and §IV discussion.
//!
//! The University of Brasília wants to offer VoWiFi to a community of up
//! to 50 000 users on a single Asterisk server measured at ≈165 concurrent
//! calls. How far does that go, and what do call policies buy?
//!
//! ```sh
//! cargo run --release --example vowifi_unb
//! ```

use asterisk_capacity::prelude::*;
use teletraffic::engset::engset_blocking_for_load;
use teletraffic::extended::extended_erlang_b;

const CHANNELS: u32 = 165;

fn main() {
    println!("== UnB VoWiFi dimensioning (N = {CHANNELS} channels) ==\n");

    // Fig. 7: a population of 8000, a fraction of whom call during the
    // busy hour, for three mean call durations.
    println!("Fig. 7 reproduction — blocking vs calling share, population 8000");
    println!(
        "{:>8} {:>12} {:>12} {:>12}",
        "share", "2.0 min", "2.5 min", "3.0 min"
    );
    for pct in (10..=100).step_by(10) {
        let frac = f64::from(pct) / 100.0;
        let mut row = format!("{pct:>7}%");
        for dur in [2.0, 2.5, 3.0] {
            let a = Erlangs::from_population(8000, frac, dur);
            let pb = erlang_b::blocking_probability(a, CHANNELS);
            row.push_str(&format!(" {:>11.2}%", pb * 100.0));
        }
        println!("{row}");
    }

    // The paper's anchors, spelled out.
    println!("\nPaper anchors at 60% calling share:");
    for (dur, note) in [
        (2.0, "<5% expected"),
        (2.5, "~21% expected"),
        (3.0, ">34% expected"),
    ] {
        let a = Erlangs::from_population(8000, 0.60, dur);
        let pb = erlang_b::blocking_probability(a, CHANNELS);
        println!(
            "  {dur:.1} min calls -> A = {:>5.0} E, Pb = {:>5.1}%  ({note})",
            a.value(),
            pb * 100.0
        );
    }

    // Cross-check with the finite-population Engset model: at 8000 sources
    // the infinite-source Erlang-B assumption is safe.
    println!("\nModel check — Erlang-B vs Engset (finite population):");
    let a = Erlangs::from_population(8000, 0.60, 2.0);
    let eb = erlang_b::blocking_probability(a, CHANNELS);
    let en = engset_blocking_for_load(8000, CHANNELS, a).expect("valid");
    println!(
        "  A = {:.0} E: Erlang-B {:.3}%  Engset(8000) {:.3}%",
        a.value(),
        eb * 100.0,
        en * 100.0
    );

    // What if blocked callers redial? Extended Erlang-B quantifies the
    // overload feedback the paper's "call policy" discussion worries about.
    println!("\nRedial feedback (extended Erlang-B) at A = 200 E fresh load:");
    for recall in [0.0, 0.25, 0.5, 0.75] {
        let r = extended_erlang_b(Erlangs(200.0), CHANNELS, recall, 500).expect("converges");
        println!(
            "  recall {:>4.0}% -> effective load {:>6.1} E, blocking {:>5.1}%",
            recall * 100.0,
            r.total_offered.value(),
            r.blocking * 100.0
        );
    }

    // Scaling out: how many 165-channel servers for the full 50 000-user
    // campus at 2% blocking, if 30% call for 3 minutes in the busy hour?
    let campus = Erlangs::from_population(50_000, 0.30, 3.0);
    let needed = erlang_b::channels_for(campus, 0.02).expect("solvable");
    let servers = needed.div_ceil(CHANNELS);
    println!(
        "\nFull campus: 50k users, 30% calling, 3 min -> {campus} \
         -> {needed} channels -> {servers} Asterisk servers at 2% blocking"
    );
}
