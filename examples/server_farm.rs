//! The paper's "increase the number of servers" alternative, quantified:
//! trunking efficiency of pooled vs split channel capacity, plus the
//! Wilkinson/ERT answer for overflow-routed farms.
//!
//! ```sh
//! cargo run --release --example server_farm
//! ```

use capacity::farm::{farm_study, render_farm};
use teletraffic::overflow::{overflow_moments, secondary_channels_for};
use teletraffic::{blocking_probability, Erlangs};

fn main() {
    // 150 E (the UnB busy hour) onto 164 total channels, three layouts,
    // averaged over 6 replications each.
    let rows = farm_study(150.0, 164, &[1, 2, 4], 6, 7);
    print!("{}", render_farm(150.0, &rows));
    println!();
    println!("Pooling wins: one big server always blocks least at equal total");
    println!("channels (Erlang-B trunking efficiency). A farm with blind");
    println!("round-robin pays the split penalty shown above.\n");

    // Smarter than round-robin: overflow routing. Primary takes what it
    // can; a secondary absorbs the spill. Dimension it properly with ERT.
    println!("Overflow-routed farm at 200 E with a 165-channel primary:");
    let primary = (Erlangs(200.0), 165u32);
    let m = overflow_moments(primary.0, primary.1).expect("valid");
    println!(
        "  spill: {:.1} E mean, peakedness z = {:.2} (>1: burstier than Poisson)",
        m.mean,
        m.peakedness()
    );
    for target in [0.05, 0.01] {
        let secondary = secondary_channels_for(&[primary], target).expect("solvable");
        println!(
            "  secondary channels for {:>4.1}% spill blocking: {} (ERT)",
            target * 100.0,
            secondary
        );
    }
    let pooled = blocking_probability(Erlangs(200.0), 165 + 60);
    println!(
        "  for reference: pooling the same ~60 extra channels directly gives {:.2}% blocking",
        pooled * 100.0
    );
}
