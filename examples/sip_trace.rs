//! Print the full SIP ladder of one call — the paper's Fig. 2, live.
//!
//! Wires a UAC, the PBX B2BUA and a UAS directly together (no network, no
//! clock) and relays messages until the call completes, printing each hop.
//!
//! ```sh
//! cargo run --example sip_trace
//! ```

use des::{SimDuration, SimTime};
use loadgen::{Uac, UacEvent, Uas, UasEvent};
use netsim::NodeId;
use pbx_sim::{Directory, Pbx, PbxAction, PbxConfig};
use sipcore::SipMessage;
use std::collections::VecDeque;

const CLIENT: NodeId = NodeId(1);
const SERVER: NodeId = NodeId(2);
const PBX: NodeId = NodeId(3);

fn name(n: NodeId) -> &'static str {
    match n {
        CLIENT => "SIPp-client",
        SERVER => "SIPp-server",
        PBX => "Asterisk",
        _ => "?",
    }
}

fn describe(msg: &SipMessage) -> String {
    match msg {
        SipMessage::Request(r) => format!("{} {}", r.method, r.uri),
        SipMessage::Response(r) => r.status.to_string(),
    }
}

fn main() {
    let mut pbx = Pbx::new(
        PbxConfig::evaluation_default(PBX),
        Directory::with_subscribers(1000, 100),
    );
    let mut uac = Uac::new(CLIENT, PBX, "pbx.unb.br");
    let mut uas = Uas::new(SERVER, SimDuration::ZERO);

    // (from, to, message) queue standing in for the wire.
    let mut wire: VecDeque<(NodeId, NodeId, SipMessage)> = VecDeque::new();
    let mut ladder = 0u32;
    let now = SimTime::ZERO;

    // Register both parties (not part of the Fig. 2 ladder).
    for (agent_node, uid) in [(CLIENT, "1001"), (SERVER, "1002")] {
        let mut scratch = Uac::new(agent_node, PBX, "pbx.unb.br");
        for ev in scratch.register(uid) {
            if let UacEvent::SendSip { to, msg } = ev {
                let replies = pbx.handle_sip(now, agent_node, msg);
                for act in replies {
                    if let PbxAction::SendSip { .. } = act {
                        let _ = to; // 200 OK absorbed silently
                    }
                }
            }
        }
    }
    println!("(1001 and 1002 registered)\n");
    println!("{:<14}{:^30}{:<14}", "", "the Fig. 2 ladder", "");

    // Place the call and pump the wire until quiescent.
    let (call_id, events) = uac.start_call(now, "1001", "1002", SimDuration::from_secs(120));
    enqueue_uac(&mut wire, events);
    let mut hangup_sent = false;

    while let Some((from, to, msg)) = wire.pop_front() {
        ladder += 1;
        println!(
            "{ladder:>3}. {:<12} --> {:<12} {}",
            name(from),
            name(to),
            describe(&msg)
        );
        match to {
            PBX => {
                for act in pbx.handle_sip(now, from, msg) {
                    if let PbxAction::SendSip { to, msg } = act {
                        wire.push_back((PBX, to, msg));
                    }
                }
            }
            CLIENT => {
                for ev in uac.on_sip(now, msg) {
                    match ev {
                        UacEvent::SendSip { to, msg } => wire.push_back((CLIENT, to, msg)),
                        UacEvent::Answered { .. } => {
                            println!("      [media flows: G.711, 50 pkt/s each way, via Asterisk]");
                        }
                        UacEvent::Ended { outcome, .. } => {
                            println!("      [call ended: {outcome:?}]");
                        }
                        UacEvent::RetryAfter { delay, .. } => {
                            println!("      [shed with 503: retry after {delay:?}]");
                        }
                        UacEvent::PacerWake { at } => {
                            println!("      [pacer deferred next INVITE until {at:?}]");
                        }
                    }
                }
            }
            SERVER => {
                for ev in uas.on_sip(now, from, msg) {
                    match ev {
                        UasEvent::SendSip { to, msg } => wire.push_back((SERVER, to, msg)),
                        UasEvent::MediaReady { .. } | UasEvent::Ended { .. } => {}
                        UasEvent::AnswerDue { .. } => unreachable!("pickup delay is zero"),
                    }
                }
            }
            _ => {}
        }
        // Once the dialog is established and the wire drains, hang up.
        if wire.is_empty() && !hangup_sent {
            hangup_sent = true;
            println!("      [120 s conversation elapses]");
            enqueue_uac(&mut wire, uac.hangup(now, &call_id));
        }
    }

    println!(
        "\ntotal SIP messages on the wire: {ladder} (paper: 9 to set up + 4 to tear down = 13)"
    );
    println!(
        "CDR: {:?}",
        pbx.cdr.records().first().map(|r| r.disposition)
    );
}

fn enqueue_uac(wire: &mut VecDeque<(NodeId, NodeId, SipMessage)>, events: Vec<UacEvent>) {
    for ev in events {
        if let UacEvent::SendSip { to, msg } = ev {
            wire.push_back((CLIENT, to, msg));
        }
    }
}
