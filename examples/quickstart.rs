//! Quickstart: size a PBX analytically, then verify empirically.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use asterisk_capacity::prelude::*;
use capacity::experiment::MediaMode;
use loadgen::HoldingDist;

fn main() {
    // ----- Analytical side (Erlang-B, the paper's Eq. 2) ------------------
    // A campus expects a 3000-call busy hour with 3-minute calls.
    let load = Erlangs::from_calls(3000.0, 180.0);
    println!("busy-hour offered load: {load}");

    // How many channels for 2% blocking?
    let n = erlang_b::channels_for(load, 0.02).expect("solvable");
    println!("channels for 2% blocking: {n}");

    // And what does the paper's 165-channel Asterisk deliver at this load?
    let pb = erlang_b::blocking_probability(load, 165);
    println!(
        "blocking at N=165: {:.2}% (the paper quotes 1.8%)",
        pb * 100.0
    );

    // ----- Empirical side (the simulated testbed) --------------------------
    // Drive a short but real experiment through the full stack: SIPp-style
    // generators, SIP signalling, per-packet G.711 RTP relayed by the
    // B2BUA, passive MOS scoring.
    let cfg = EmpiricalConfig {
        erlangs: 30.0,
        servers: 1,
        holding: HoldingDist::Fixed(30.0),
        placement_window_s: 60.0,
        channels: 36,
        media: MediaMode::PerPacket { encode_every: 10 },
        pickup_delay: des::SimDuration::ZERO,
        link_loss_probability: 0.0,
        silence_suppression: false,
        capture_traffic: false,
        user_pool: 50,
        max_calls_per_user: None,
        faults: faults::FaultSchedule::new(),
        overload: None,
        overload_law: None,
        retry: None,
        threads: None,
        population: None,
        seed: 2015,
    };
    let result = EmpiricalRunner::run(cfg);
    println!();
    println!("empirical run @ {} Erlangs:", result.erlangs);
    println!("  calls attempted     : {}", result.attempted);
    println!("  calls completed     : {}", result.completed);
    println!(
        "  blocked             : {} ({:.1}%)",
        result.blocked,
        result.observed_pb * 100.0
    );
    println!("  Erlang-B prediction : {:.1}%", result.analytic_pb * 100.0);
    println!("  peak channels used  : {}", result.peak_channels);
    println!("  carried traffic     : {:.1} E", result.carried_erlangs);
    println!(
        "  PBX CPU             : mean {:.1}%, band {:.1}-{:.1}%",
        result.cpu_mean * 100.0,
        result.cpu_band.0 * 100.0,
        result.cpu_band.1 * 100.0
    );
    println!("  RTP packets observed: {}", result.monitor.rtp_packets);
    println!("  mean MOS            : {:.2}", result.monitor.mos_mean);
    println!("  DES events          : {}", result.events_processed);
}
