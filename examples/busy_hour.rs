//! A busy-hour trace through the full empirical stack.
//!
//! Reproduces the paper's §IV back-of-envelope — "3000 calls in the busy
//! hour, 3-minute average duration, 165 channels ⇒ 1.8% blocking" — but
//! *empirically*: real SIP ladders through the B2BUA with Poisson arrivals
//! and exponential holding times, then compares against Erlang-B.
//!
//! (Media is off: blocking is a pure signalling/occupancy phenomenon, and
//! this keeps the hour-long trace fast. See `quickstart.rs` for a run with
//! the full per-packet media plane.)
//!
//! ```sh
//! cargo run --release --example busy_hour
//! ```

use asterisk_capacity::prelude::*;
use capacity::experiment::MediaMode;
use loadgen::HoldingDist;

fn main() {
    // 3000 calls/hour of mean 180 s = 150 Erlangs.
    let offered = Erlangs::from_calls(3000.0, 180.0);
    println!("busy hour: 3000 calls, mean 3 min -> {offered}");

    let cfg = EmpiricalConfig {
        erlangs: offered.value(),
        servers: 1,
        // The textbook Erlang-B assumption; the paper's fixed 120 s is
        // exercised by Table I. Erlang-B is insensitive to the choice —
        // the ablation bench quantifies exactly that.
        holding: HoldingDist::Exponential(180.0),
        placement_window_s: 3600.0,
        channels: 165,
        media: MediaMode::Off,
        pickup_delay: des::SimDuration::ZERO,
        link_loss_probability: 0.0,
        silence_suppression: false,
        capture_traffic: false,
        user_pool: 200,
        max_calls_per_user: None,
        faults: faults::FaultSchedule::new(),
        overload: None,
        overload_law: None,
        retry: None,
        threads: None,
        population: None,
        seed: 60 * 60,
    };
    let r = EmpiricalRunner::run(cfg);

    println!("  attempted        : {}", r.attempted);
    println!("  completed        : {}", r.completed);
    println!("  blocked          : {}", r.blocked);
    println!("  observed blocking: {:.2}%", r.observed_pb * 100.0);
    println!(
        "  Erlang-B predicts: {:.2}%  (paper quotes 1.8%)",
        r.analytic_pb * 100.0
    );
    println!("  peak channels    : {} of 165", r.peak_channels);
    println!(
        "  carried traffic  : {:.1} E offered {:.1} E",
        r.carried_erlangs, r.erlangs
    );
    println!("  SIP messages     : {}", r.monitor.sip_total);
    println!(
        "  sim horizon      : {:.0} s, {} events",
        r.sim_seconds, r.events_processed
    );

    let agreement = (r.observed_pb - r.analytic_pb).abs();
    println!(
        "\nempirical vs analytic gap: {:.2} pp — the Erlang-B model {}",
        agreement * 100.0,
        if agreement < 0.01 {
            "characterises this PBX well"
        } else {
            "needs a second look"
        }
    );
}
