//! Write a Wireshark-openable `.pcap` of a short experiment — the paper's
//! packet-counting methodology, reproducible byte-for-byte.
//!
//! ```sh
//! cargo run --release --example capture_pcap
//! wireshark /tmp/asterisk-capacity-demo.pcap   # if you have it
//! ```

use capacity::experiment::{run_world, EmpiricalConfig, MediaMode};
use des::SimTime;
use loadgen::HoldingDist;
use vmon::pcap::read_pcap;

fn main() {
    let mut cfg = EmpiricalConfig::smoke(2015);
    cfg.erlangs = 1.0;
    cfg.holding = HoldingDist::Fixed(5.0);
    cfg.placement_window_s = 15.0;
    cfg.channels = 4;
    cfg.user_pool = 4;
    cfg.media = MediaMode::PerPacket { encode_every: 10 };
    cfg.capture_traffic = true;

    let sim = run_world(cfg, SimTime::from_secs(30));
    let world = sim.world;
    let capture = world.capture.expect("capture was enabled");
    println!(
        "captured {} frames over 30 simulated seconds",
        capture.len()
    );

    let path = std::env::temp_dir().join("asterisk-capacity-demo.pcap");
    capture.write_to(&path).expect("writable temp dir");
    println!("wrote {}", path.display());

    // Prove the file parses: read it back and summarise.
    let bytes = std::fs::read(&path).expect("readable");
    let packets = read_pcap(&bytes).expect("valid pcap");
    let sip = packets.iter().filter(|p| p.dst_port == 5060).count();
    let rtp = packets.len() - sip;
    println!("read back {} packets: {sip} SIP, {rtp} RTP", packets.len());

    // The first SIP packet should be a REGISTER in valid wire format.
    let first_sip = packets
        .iter()
        .find(|p| p.dst_port == 5060)
        .expect("some SIP");
    let msg = sipcore::parse_message(&first_sip.payload).expect("parses as SIP");
    println!(
        "first SIP packet: {}",
        match &msg {
            sipcore::SipMessage::Request(r) => format!("{} {}", r.method, r.uri),
            sipcore::SipMessage::Response(r) => r.status.to_string(),
        }
    );
}
