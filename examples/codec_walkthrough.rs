//! One media stream end-to-end: microphone → G.711 → RTP → network →
//! jitter/loss measurement → E-model MOS.
//!
//! Everything the paper's media plane does, on a single stream, with the
//! intermediate numbers printed.
//!
//! ```sh
//! cargo run --release --example codec_walkthrough
//! ```

use des::rng::Distributions;
use des::StreamRng;
use rtpcore::g711::{ulaw_decode, ulaw_encode};
use rtpcore::jitter::{JitterEstimator, SequenceTracker};
use rtpcore::packet::RtpPacket;
use rtpcore::packetizer::{Law, Packetizer, VoiceSource, SAMPLES_PER_FRAME};
use voiceq::{CodecProfile, EModelInputs};

fn main() {
    // --- 1. The codec on its own ------------------------------------------
    let mut voice = VoiceSource::new(42);
    let samples = voice.next_samples(8000); // one second of "speech"
    let encoded: Vec<u8> = samples.iter().map(|&s| ulaw_encode(s)).collect();
    let decoded: Vec<i16> = encoded.iter().map(|&c| ulaw_decode(c)).collect();
    let sig: f64 = samples.iter().map(|&s| f64::from(s).powi(2)).sum();
    let err: f64 = samples
        .iter()
        .zip(&decoded)
        .map(|(&a, &b)| (f64::from(a) - f64::from(b)).powi(2))
        .sum();
    println!("G.711 mu-law on 1 s of speech-band signal:");
    println!("  rate: 8000 samples/s x 8 bits = 64 kbit/s");
    println!(
        "  SQNR: {:.1} dB (toll quality is ~35-38 dB)",
        10.0 * (sig / err).log10()
    );

    // --- 2. Packetization ---------------------------------------------------
    let mut packetizer = Packetizer::new(0xC0FFEE, Law::Mu, 100, 0);
    let mut voice = VoiceSource::new(42);
    let n_packets = 500usize; // 10 seconds
    let mut wire: Vec<Vec<u8>> = Vec::with_capacity(n_packets);
    for _ in 0..n_packets {
        let frame = voice.next_samples(SAMPLES_PER_FRAME);
        wire.push(packetizer.packetize(&frame).encode());
    }
    println!("\nRTP packetization (20 ms ptime):");
    println!(
        "  {} packets, {} bytes each (12 RTP + 160 payload)",
        wire.len(),
        wire[0].len()
    );
    println!("  => 50 packets/s/direction; ~100/s per call as the paper counts");

    // --- 3. A jittery, lossy network ----------------------------------------
    let mut rng = StreamRng::seed_from_u64(7);
    let mut tracker = SequenceTracker::new();
    let mut jitter = JitterEstimator::new(8000.0);
    let base_delay = 0.030; // 30 ms one way
    let mut received = 0u64;
    for (i, bytes) in wire.iter().enumerate() {
        if rng.coin(0.02) {
            continue; // 2% random loss
        }
        let pkt = RtpPacket::decode(bytes).expect("valid RTP");
        let jitter_ms = rng.uniform_f64(-0.004, 0.004);
        let arrival = i as f64 * 0.020 + base_delay + jitter_ms;
        tracker.record(pkt.header.sequence);
        jitter.record(arrival, pkt.header.timestamp);
        received += 1;
    }
    println!("\nafter the network (30 ms delay, ±4 ms wobble, 2% loss):");
    println!("  received : {received}/{n_packets}");
    println!("  loss     : {:.2}%", tracker.loss_fraction() * 100.0);
    println!(
        "  jitter   : {:.2} ms (RFC 3550 estimator)",
        jitter.jitter_ms()
    );

    // --- 4. What a listener would score --------------------------------------
    let inputs = EModelInputs {
        network_delay_ms: base_delay * 1000.0,
        jitter_buffer_ms: (2.0 * jitter.jitter_ms()).max(40.0),
        packet_loss: tracker.loss_fraction(),
        burst_ratio: 1.0,
        codec: CodecProfile::g711(),
        advantage: 0.0,
    };
    let r = voiceq::r_factor(&inputs);
    println!("\nE-model verdict:");
    println!("  R-factor : {r:.1}");
    println!("  MOS      : {:.2}", voiceq::r_to_mos(r));
    println!("  category : {:?}", voiceq::categorize(r));

    // Same impairments, no packet-loss concealment:
    let no_plc = EModelInputs {
        codec: CodecProfile::g711_no_plc(),
        ..inputs
    };
    println!(
        "  (without PLC the same stream scores {:.2})",
        voiceq::estimate_mos(&no_plc)
    );
}
