//! # asterisk-capacity
//!
//! Façade crate for the reproduction of *"Asterisk PBX Capacity Evaluation"*
//! (L. R. Costa, L. S. N. Nunes, J. L. Bordim, K. Nakano — IEEE IPDPSW 2015).
//!
//! The workspace implements the paper end-to-end:
//!
//! * [`teletraffic`] — the analytical side: Erlang-B (the paper's Eq. 2),
//!   Erlang-C, Engset, extended Erlang-B, and traffic-unit conversions.
//! * [`des`] — a deterministic discrete-event simulation engine with RNG
//!   streams and a statistics toolkit.
//! * [`sipcore`] — SIP messages, parsing/serialization, transactions and
//!   dialogs (RFC 3261 subset).
//! * [`rtpcore`] — RTP/RTCP, real G.711 μ-law/A-law codecs, packetization
//!   and RFC 3550 jitter estimation.
//! * [`voiceq`] — the ITU-T G.107 E-model mapping network impairments to
//!   MOS scores.
//! * [`netsim`] — the simulated 10/100 Mb/s switched LAN of the paper's
//!   Fig. 4.
//! * [`pbx_sim`] — the Asterisk stand-in: a B2BUA with a finite channel
//!   pool, registrar/directory auth, CDRs, RTP relay, and a CPU-cost model.
//! * [`loadgen`] — the SIPp stand-in: scenario-driven UAC/UAS agents with
//!   Poisson arrivals.
//! * [`vmon`] — the VoIPmonitor/Wireshark stand-in: passive RTP analysis,
//!   MOS estimation and SIP message accounting.
//! * [`capacity`] — the experiment harness that regenerates the paper's
//!   Table I and Figures 3, 6 and 7.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for
//! paper-vs-measured results.
//!
//! ## Quickstart
//!
//! ```
//! use asterisk_capacity::prelude::*;
//!
//! // Analytical: how many channels for 150 Erlangs at 2% blocking?
//! let n = teletraffic::channels_for(Erlangs(150.0), 0.02).unwrap();
//! assert!(n > 150 && n < 180);
//! ```

#![forbid(unsafe_code)]

pub use capacity;
pub use des;
pub use faults;
pub use loadgen;
pub use netsim;
pub use pbx_sim;
pub use rtpcore;
pub use sipcore;
pub use teletraffic;
pub use vmon;
pub use voiceq;

/// Commonly used items, re-exported for examples and downstream users.
pub mod prelude {
    pub use capacity::{
        self,
        experiment::{EmpiricalConfig, EmpiricalRunner, SimOptions},
        figures, table1,
        world::MediaPath,
    };
    pub use des;
    pub use faults::{self, FaultKind, FaultSchedule};
    pub use overload::{self, ControlLaw};
    pub use pbx_sim::{self, PbxConfig};
    pub use teletraffic::{self, erlang_b, CallRate, Erlangs, HoldingTime};
    pub use voiceq::{self, EModelInputs};
}
